"""Metamorphic relations over LOCAL algorithms.

A *metamorphic relation* pairs an input transformation with the output
relation a correct LOCAL algorithm must preserve under it.  The model's
axioms (Section II; the indistinguishability arguments behind Theorems
3 and 10) supply the catalogue:

====================  ================================================
relation              a correct algorithm must …
====================  ================================================
id-relabeling         stay *LCL-valid* under any ID assignment (the
                      output may change; its correctness may not)
port-permutation      stay LCL-valid under any port renumbering
vertex-order          be equivariant under relabeling the simulation
                      handles: outputs follow the IDs / random
                      streams, never the engine's vertex indices
engine-equivalence    produce bit-identical results on every
                      registered engine backend
observer-neutrality   be unchanged by attaching a ``MetricsObserver``
                      (spectators never steer)
fault-determinism     under a fixed ``FaultPlan``, be a deterministic
                      function of the plan — same perturbed outcome on
                      every run and on every backend
checkpoint-resume     reproduce the uninterrupted run byte-for-byte
                      (outcome, metrics summary, JSONL trace) when
                      killed at a derived round and resumed from its
                      checkpoint, on every backend, faults included
partition-invariance  on the sharded backend, be independent of the
                      vertex partition: every shard count (and the
                      seeded-random placement) must reproduce the
                      serial fast engine's outcome, metrics summary,
                      and JSONL trace bytes, faults included
order-invariance      (opt-in) depend only on the relative order of
                      IDs, not their values
====================  ================================================

Relations operate on a :class:`Subject` — a normalized handle over
either a registered end-to-end driver (:func:`subject_from_spec`) or a
bare :class:`~repro.core.algorithm.SyncAlgorithm`
(:func:`subject_from_algorithm`) — so the same catalogue applies to
shipped pipelines and to test fixtures alike.

Every check compares *captured outcomes*: a run that raises is folded
to an ``("error", "ExcType: message")`` value, so "both runs fail with
the same budget error" satisfies a determinism relation while "one run
succeeds, the other crashes" violates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms.drivers import DriverSpec
from ..core.algorithm import SyncAlgorithm
from ..core.backend import available_backend_names, use_backend
from ..core.context import Model
from ..core.engine import (
    inject_faults,
    observe_runs,
    run_local,
    use_reference_engine,
)
from ..faults.plan import FaultPlan
from ..faults.runtime import mix64
from ..graphs.graph import Graph
from ..lcl.problem import LCLProblem
from ..obs import JsonlTraceObserver, MetricsObserver
from ..obs.observer import BatchRunObserver
from ..transforms.order_invariance import order_preserving_remap
from .gen import (
    Instance,
    apply_inverse,
    derive_rng,
    permute_ports,
    permute_vertices,
    random_permutation,
    reshuffled,
)

# ----------------------------------------------------------------------
# Subjects and outcome capture
# ----------------------------------------------------------------------
#: Normalized run entry point: ``(graph, ids, seed, rng_factory)`` ->
#: ``(labeling, rounds)``.  ``rng_factory`` is ``None`` except for bare
#: RandLOCAL subjects that opt into per-vertex stream override.
Runner = Callable[
    [Graph, Optional[Sequence[int]], Optional[int], Optional[Any]],
    Tuple[List[Any], int],
]


@dataclass(frozen=True)
class Subject:
    """One algorithm under verification, with the knobs it honours."""

    name: str
    model: Model
    runner: Runner
    problem: Optional[Callable[[Graph], LCLProblem]] = None
    accepts_ids: bool = False
    accepts_seed: bool = False
    #: Bare subjects run through ``run_local`` directly may have their
    #: per-vertex random streams re-keyed (needed for RAND vertex-order
    #: equivariance); registry drivers seed internally and cannot.
    supports_rng_factory: bool = False
    #: Declared by the author: output depends only on the relative
    #: order of IDs.  Audited by :class:`OrderInvariance`.
    order_invariant: bool = False

    def run(
        self,
        graph: Graph,
        *,
        ids: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
        rng_factory: Optional[Any] = None,
    ) -> Tuple[List[Any], int]:
        return self.runner(graph, ids, seed, rng_factory)


def subject_from_spec(spec: DriverSpec) -> Subject:
    """Wrap a registered end-to-end driver as a verification subject."""

    def runner(
        graph: Graph,
        ids: Optional[Sequence[int]],
        seed: Optional[int],
        rng_factory: Optional[Any],
    ) -> Tuple[List[Any], int]:
        if rng_factory is not None:
            raise TypeError(
                f"driver {spec.name!r} does not expose rng_factory"
            )
        report = spec.invoke(graph, ids, seed)
        return list(report.labeling), report.rounds

    return Subject(
        name=spec.name,
        model=spec.model,
        runner=runner,
        problem=spec.problem,
        accepts_ids=spec.accepts_ids,
        accepts_seed=spec.accepts_seed,
    )


def subject_from_algorithm(
    make_algorithm: Callable[[], SyncAlgorithm],
    *,
    name: str,
    model: Model,
    problem: Optional[Callable[[Graph], LCLProblem]] = None,
    order_invariant: bool = False,
    max_rounds: int = 10_000,
) -> Subject:
    """Wrap a bare node program as a verification subject.

    ``make_algorithm`` is a zero-argument factory so that a fixture
    with (deliberately buggy) instance state is rebuilt fresh per run.
    """

    def runner(
        graph: Graph,
        ids: Optional[Sequence[int]],
        seed: Optional[int],
        rng_factory: Optional[Any],
    ) -> Tuple[List[Any], int]:
        result = run_local(
            graph,
            make_algorithm(),
            model,
            ids=ids,
            seed=seed,
            rng_factory=rng_factory,
            max_rounds=max_rounds,
        )
        return list(result.outputs), result.rounds

    return Subject(
        name=name,
        model=model,
        runner=runner,
        problem=problem,
        accepts_ids=model is Model.DET,
        accepts_seed=model is Model.RAND,
        supports_rng_factory=model is Model.RAND,
        order_invariant=order_invariant,
    )


#: ``("ok", (canonical_labeling, rounds))`` or ``("error", "Type: msg")``.
Outcome = Tuple[str, Any]


def _canonical(value: Any) -> Any:
    """Fold lists/tuples to tuples so label equality is structural."""
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(x) for x in value)
    return value


def capture(
    runner: Callable[[], Tuple[List[Any], int]],
) -> Outcome:
    """Run and fold the result (or the raised error) into a comparable
    outcome value."""
    try:
        labeling, rounds = runner()
    except Exception as exc:  # noqa: BLE001 — outcome folding is the point
        return ("error", f"{type(exc).__name__}: {exc}")
    return ("ok", (_canonical(labeling), rounds))


def _subject_kwargs(
    subject: Subject, instance: Instance
) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    if subject.accepts_ids:
        kwargs["ids"] = list(instance.ids)
    if subject.accepts_seed:
        kwargs["seed"] = instance.run_seed
    return kwargs


def run_outcome(
    subject: Subject, instance: Instance, **overrides: Any
) -> Outcome:
    """The captured outcome of ``subject`` on ``instance`` with the
    instance-derived IDs/seed (overridable per relation)."""
    kwargs = _subject_kwargs(subject, instance)
    kwargs.update(overrides)
    graph = kwargs.pop("graph", instance.graph)
    return capture(lambda: subject.run(graph, **kwargs))


def _validity(
    subject: Subject, graph: Graph, outcome: Outcome
) -> Optional[bool]:
    """Whether an ok outcome's labeling satisfies the subject's LCL
    (``None`` for errors or problem-less subjects)."""
    if outcome[0] != "ok" or subject.problem is None:
        return None
    labeling, _rounds = outcome[1]
    problem = subject.problem(graph)
    return not problem.violations(graph, list(labeling))


# ----------------------------------------------------------------------
# The relation protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RelationViolation:
    """One counterexample: a subject/instance pair breaking a relation."""

    relation: str
    subject: str
    message: str
    instance: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"[{self.relation}] {self.subject}: {self.message} "
            f"(instance {self.instance})"
        )


class Relation:
    """Base class: one metamorphic relation.

    Subclasses define :attr:`name`, :meth:`applies_to` (which subjects
    the transformation is meaningful for) and :meth:`check` (returning
    ``None`` on success or a :class:`RelationViolation`).
    """

    name: str = "relation"
    description: str = ""

    def applies_to(self, subject: Subject) -> bool:
        raise NotImplementedError

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        raise NotImplementedError

    def _violation(
        self, subject: Subject, instance: Instance, message: str
    ) -> RelationViolation:
        return RelationViolation(
            relation=self.name,
            subject=subject.name,
            message=message,
            instance=instance.describe(),
        )


class IdRelabeling(Relation):
    """LCL validity must not depend on *which* IDs vertices received.

    Runs the subject under the identity assignment and under a seeded
    shuffle of it; outcome kinds and LCL validity must agree.  An
    algorithm that (say) colors by ``ID mod 3`` is valid exactly when
    the assignment happens to align with the topology — this relation
    is what catches it.
    """

    name = "id-relabeling"
    description = "LCL validity invariant under ID reassignment"

    def applies_to(self, subject: Subject) -> bool:
        return subject.accepts_ids and subject.problem is not None

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        base = run_outcome(
            subject, instance, ids=list(range(instance.n))
        )
        relabeled = run_outcome(subject, reshuffled(instance, 1))
        if base[0] != relabeled[0]:
            return self._violation(
                subject,
                instance,
                f"outcome kind changed under ID relabeling: "
                f"{base[0]} -> {relabeled[0]} ({relabeled[1]!r})",
            )
        valid_base = _validity(subject, instance.graph, base)
        valid_new = _validity(subject, instance.graph, relabeled)
        if valid_base != valid_new:
            return self._violation(
                subject,
                instance,
                f"LCL validity changed under ID relabeling: "
                f"identity ids valid={valid_base}, shuffled ids "
                f"valid={valid_new}",
            )
        if valid_new is False:
            return self._violation(
                subject,
                instance,
                "labeling violates the declared LCL under both ID "
                "assignments",
            )
        return None


class PortPermutation(Relation):
    """LCL validity must not depend on how vertices numbered their
    ports.

    The same abstract graph is rebuilt under a shuffled edge order
    (hence fresh port numbers everywhere); the subject must stay
    correct.  Catches programs that treat a port number as a global
    direction (e.g. "port 0 points left").
    """

    name = "port-permutation"
    description = "LCL validity invariant under port renumbering"

    def applies_to(self, subject: Subject) -> bool:
        return subject.problem is not None and (
            subject.accepts_ids or subject.accepts_seed
        )

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        base = run_outcome(subject, instance)
        renumbered_graph = permute_ports(
            instance.graph, mix64(instance.seed, 0x5050)
        )
        renumbered = run_outcome(
            subject, instance, graph=renumbered_graph
        )
        if base[0] != renumbered[0]:
            return self._violation(
                subject,
                instance,
                f"outcome kind changed under port renumbering: "
                f"{base[0]} -> {renumbered[0]} ({renumbered[1]!r})",
            )
        valid_base = _validity(subject, instance.graph, base)
        valid_new = _validity(subject, renumbered_graph, renumbered)
        if valid_base != valid_new:
            return self._violation(
                subject,
                instance,
                f"LCL validity changed under port renumbering: "
                f"original ports valid={valid_base}, renumbered "
                f"valid={valid_new}",
            )
        if valid_new is False:
            return self._violation(
                subject,
                instance,
                "labeling violates the declared LCL under both port "
                "numberings",
            )
        return None


class VertexOrderInvariance(Relation):
    """Outputs must follow IDs (or random streams), never the engine's
    vertex indices.

    The graph is rebuilt under a vertex permutation σ with ports
    preserved, and vertex σ(v) inherits v's ID (and, for bare RAND
    subjects, v's random stream).  Every local view is then bitwise
    identical, so a correct run satisfies ``output'[σ(v)] == output[v]``
    with equal round counts.  Catches hidden cross-node channels and
    scan-order leaks.
    """

    name = "vertex-order"
    description = "equivariance under relabeling of simulation handles"

    def applies_to(self, subject: Subject) -> bool:
        if subject.accepts_ids:
            return True
        return subject.accepts_seed and subject.supports_rng_factory

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        perm = random_permutation(
            instance.n, instance.seed, instance.requested_n
        )
        inverse = apply_inverse(perm)
        permuted_graph = permute_vertices(instance.graph, perm)

        base_kwargs: Dict[str, Any] = {}
        perm_kwargs: Dict[str, Any] = {"graph": permuted_graph}
        if subject.accepts_ids:
            ids = list(instance.ids)
            base_kwargs["ids"] = ids
            perm_kwargs["ids"] = [ids[inverse[w]] for w in range(instance.n)]
        if subject.accepts_seed:
            base_kwargs["seed"] = instance.run_seed
            perm_kwargs["seed"] = instance.run_seed
        if subject.supports_rng_factory and subject.accepts_seed:
            run_seed = instance.run_seed
            base_kwargs["rng_factory"] = lambda v: derive_rng(
                run_seed, 0x766F, v
            )
            perm_kwargs["rng_factory"] = lambda w: derive_rng(
                run_seed, 0x766F, inverse[w]
            )

        base = run_outcome(subject, instance, **base_kwargs)
        permuted = run_outcome(subject, instance, **perm_kwargs)
        if base[0] != permuted[0]:
            return self._violation(
                subject,
                instance,
                f"outcome kind changed under vertex relabeling: "
                f"{base[0]} -> {permuted[0]} ({permuted[1]!r})",
            )
        if base[0] != "ok":
            return None
        labeling, rounds = base[1]
        perm_labeling, perm_rounds = permuted[1]
        if rounds != perm_rounds:
            return self._violation(
                subject,
                instance,
                f"round count changed under vertex relabeling: "
                f"{rounds} -> {perm_rounds}",
            )
        for v in range(instance.n):
            if labeling[v] != perm_labeling[perm[v]]:
                return self._violation(
                    subject,
                    instance,
                    f"output not equivariant: vertex {v} got "
                    f"{labeling[v]!r} but its image {perm[v]} got "
                    f"{perm_labeling[perm[v]]!r}",
                )
        return None


class EngineEquivalence(Relation):
    """Every available engine backend must agree bit-for-bit with the
    reference engine on every run (labels, round counts, and error
    outcomes alike).

    The relation iterates the backend registry, so a newly registered
    backend (e.g. ``"vectorized"``) is pinned against the oracle with
    no test changes; backends whose dependencies are missing are
    skipped (the no-numpy environment still checks fast vs reference).
    """

    name = "engine-equivalence"
    description = "every registered backend == reference engine"

    def applies_to(self, subject: Subject) -> bool:
        return True

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        with use_reference_engine():
            reference = run_outcome(subject, instance)
        for name in available_backend_names():
            if name == "reference":
                continue
            with use_backend(name):
                candidate = run_outcome(subject, instance)
            if candidate != reference:
                return self._violation(
                    subject,
                    instance,
                    f"backend {name!r} diverges from the reference "
                    f"engine: {name}={_summarize(candidate)}, "
                    f"reference={_summarize(reference)}",
                )
        return None


class ObserverNeutrality(Relation):
    """Attaching observers must never change the result — telemetry is
    a spectator, not a participant — and what the observers *record*
    must not depend on which backend ran the algorithm.

    Checked on every available backend: (1) bare vs observed (a
    ``MetricsObserver`` plus a ``JsonlTraceObserver`` with per-vertex
    step events, the heaviest deterministic-plane configuration)
    outcome equality; (2) for runs that complete, the metrics summary
    and the full trace bytes must be identical across all backends —
    the byte-identity half of the two-plane telemetry contract.
    Raising runs are held to outcome equality only: the batched stream
    legally ends at the last completed round boundary while a scalar
    engine may emit a partial-round prefix.
    """

    name = "observer-neutrality"
    description = (
        "observers change nothing; summaries and trace bytes "
        "backend-identical"
    )

    def applies_to(self, subject: Subject) -> bool:
        return True

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        import io

        first_backend: Optional[str] = None
        first_summary: Optional[Dict[str, Any]] = None
        first_trace: Optional[str] = None
        for name in available_backend_names():
            with use_backend(name):
                bare = run_outcome(subject, instance)
                metrics = MetricsObserver()
                sink = io.StringIO()
                trace = JsonlTraceObserver(sink, node_steps=True)
                with observe_runs(metrics, trace):
                    observed = run_outcome(subject, instance)
            if bare != observed:
                return self._violation(
                    subject,
                    instance,
                    f"attaching observers changed the outcome on "
                    f"backend {name!r}: bare={_summarize(bare)}, "
                    f"observed={_summarize(observed)}",
                )
            if bare[0] != "ok":
                continue
            summary = metrics.summary()
            trace_bytes = sink.getvalue()
            if first_backend is None:
                first_backend = name
                first_summary = summary
                first_trace = trace_bytes
                continue
            if summary != first_summary:
                return self._violation(
                    subject,
                    instance,
                    f"metrics summary diverges between backends "
                    f"{first_backend!r} and {name!r}",
                )
            if trace_bytes != first_trace:
                return self._violation(
                    subject,
                    instance,
                    f"trace bytes diverge between backends "
                    f"{first_backend!r} and {name!r}",
                )
        return None


def _tag_corrupt(payload: Any) -> Any:
    """Deterministic corruption: wrap the payload so receivers see a
    well-formed but wrong value (repr-stable, hence outcome-comparable)."""
    return ("corrupted", payload)


class FaultPlanDeterminism(Relation):
    """Under a fixed nonzero :class:`FaultPlan`, the perturbed execution
    must be a pure function of the plan: repeating the run — on any
    available backend — reproduces the identical outcome (including the
    identical failure, when the adversary wins)."""

    name = "fault-determinism"
    description = "same FaultPlan => same perturbed outcome, any backend"

    #: The message adversary used for every check: light message-layer
    #: noise plus a budget so runs the faults derail still end
    #: deterministically.
    drop_rate: float = 0.02
    corrupt_rate: float = 0.01
    round_budget: int = 512
    #: The crash adversary: message-fault-free, so backends whose
    #: kernels declare crash support stay on their native round loop
    #: instead of falling back — the plan that pins frozen-publish
    #: crash-stop semantics per backend.
    crash_rate: float = 0.05
    crash_round: int = 1

    def applies_to(self, subject: Subject) -> bool:
        return True

    def plan_for(self, instance: Instance) -> FaultPlan:
        return FaultPlan(
            seed=mix64(instance.seed, 0xFA01),
            drop_rate=self.drop_rate,
            corrupt_rate=self.corrupt_rate,
            corrupt=_tag_corrupt,
            round_budget=self.round_budget,
        )

    def crash_plan_for(self, instance: Instance) -> FaultPlan:
        return FaultPlan(
            seed=mix64(instance.seed, 0xFA02),
            crash_rate=self.crash_rate,
            crash_round=self.crash_round,
            round_budget=self.round_budget,
        )

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        for plan in (
            self.plan_for(instance),
            self.crash_plan_for(instance),
        ):
            violation = self._check_plan(subject, instance, plan)
            if violation is not None:
                return violation
        return None

    def _check_plan(
        self, subject: Subject, instance: Instance, plan: FaultPlan
    ) -> Optional[RelationViolation]:
        with inject_faults(plan):
            first = run_outcome(subject, instance)
        with inject_faults(plan):
            second = run_outcome(subject, instance)
        if first != second:
            return self._violation(
                subject,
                instance,
                f"repeating the same FaultPlan produced a different "
                f"outcome: {_summarize(first)} vs {_summarize(second)}",
            )
        for name in available_backend_names():
            with use_backend(name), inject_faults(plan):
                outcome = run_outcome(subject, instance)
            if first != outcome:
                return self._violation(
                    subject,
                    instance,
                    f"backend {name!r} diverges under the same "
                    f"FaultPlan: fast={_summarize(first)}, {name}="
                    f"{_summarize(outcome)}",
                )
        return None


class _CheckpointKill(Exception):
    """Deterministic mid-run death injected by :class:`CheckpointResume`."""


class _KillSwitch(BatchRunObserver):
    """Batch-capable observer that raises after N delivered round
    batches (setup excluded).  With ``kill_after=None`` it only counts
    — the baseline leg uses that to learn the run's total length, and
    the resume leg to keep the observer arity identical to the kill
    leg's snapshot."""

    checkpoint_capable = True

    def __init__(self, kill_after: Optional[int] = None) -> None:
        super().__init__()
        self.kill_after = kill_after
        self.seen = 0

    def checkpoint_state(self) -> Any:
        return self.seen

    def restore_checkpoint(self, state: Any) -> None:
        self.seen = 0 if state is None else int(state)

    def on_round_batch(self, batch: Any) -> None:
        if batch.round_index < 0:
            return
        self.seen += 1
        if self.kill_after is not None and self.seen >= self.kill_after:
            raise _CheckpointKill(
                f"injected kill after {self.seen} round batches"
            )


class CheckpointResume(Relation):
    """Killing a checkpointed run at a splitmix64-chosen round and
    resuming it must reproduce the uninterrupted run **byte-for-byte**:
    the same outcome, the same metrics summary, and the same JSONL
    trace bytes — on every registered backend, bare and under nonzero
    :class:`FaultPlan`\\ s.

    Three legs per backend/plan: (1) an uninterrupted baseline that
    also counts delivered round batches; (2) a checkpointed run killed
    after ``1 + mix64(seed, …) % total`` batches; (3) a resumed run
    (fresh observer instances, the trace sink pre-seeded with the kill
    leg's partial bytes) that must land exactly on the baseline.  The
    crash plan runs on every backend; a duplicate-rate plan runs on the
    vectorized backend only, pinning the checkpoint hand-off through
    its silent fallback to the per-node engine.
    """

    name = "checkpoint-resume"
    description = "kill at a derived round + resume == uninterrupted run"

    kill_salt: int = 0xC4EC
    crash_rate: float = 0.05
    crash_round: int = 1
    duplicate_rate: float = 0.05
    round_budget: int = 512

    def applies_to(self, subject: Subject) -> bool:
        return True

    def _plans(
        self, instance: Instance, backend: str
    ) -> List[Optional[FaultPlan]]:
        plans: List[Optional[FaultPlan]] = [
            None,
            FaultPlan(
                seed=mix64(instance.seed, 0xC4EC01),
                crash_rate=self.crash_rate,
                crash_round=self.crash_round,
                round_budget=self.round_budget,
            ),
        ]
        if backend == "vectorized":
            plans.append(
                FaultPlan(
                    seed=mix64(instance.seed, 0xC4EC02),
                    duplicate_rate=self.duplicate_rate,
                    round_budget=self.round_budget,
                )
            )
        return plans

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        for index, backend in enumerate(available_backend_names()):
            for plan_index, plan in enumerate(self._plans(instance, backend)):
                violation = self._check_leg(
                    subject, instance, backend, plan, index * 8 + plan_index
                )
                if violation is not None:
                    return violation
        return None

    def _observed(
        self, subject: Subject, instance: Instance, kill: _KillSwitch
    ) -> Tuple[Outcome, "io.StringIO", MetricsObserver]:
        import io

        metrics = MetricsObserver()
        sink = io.StringIO()
        trace = JsonlTraceObserver(sink)
        with observe_runs(metrics, trace, kill):
            outcome = run_outcome(subject, instance)
        return outcome, sink, metrics

    def _check_leg(
        self,
        subject: Subject,
        instance: Instance,
        backend: str,
        plan: Optional[FaultPlan],
        salt: int,
    ) -> Optional[RelationViolation]:
        import contextlib
        import io
        import shutil
        import tempfile

        from ..core.checkpoint import checkpointing

        label = f"backend {backend!r}" + (
            "" if plan is None else " under a nonzero FaultPlan"
        )

        def scoped(extra: Any = None) -> Any:
            stack = contextlib.ExitStack()
            stack.enter_context(use_backend(backend))
            if plan is not None:
                stack.enter_context(inject_faults(plan))
            if extra is not None:
                stack.enter_context(extra)
            return stack

        # Leg 1: uninterrupted baseline, counting delivered batches.
        counter = _KillSwitch(None)
        with scoped():
            baseline, base_sink, base_metrics = self._observed(
                subject, instance, counter
            )
        total = counter.seen
        if total < 1:
            return None  # nothing to kill mid-flight
        kill_at = 1 + mix64(instance.seed, self.kill_salt, salt) % total

        workdir = tempfile.mkdtemp(prefix="repro-ckpt-verify-")
        try:
            # Leg 2: checkpoint every round boundary, die at kill_at.
            with scoped(checkpointing(workdir, every_rounds=1)):
                killed, kill_sink, _ = self._observed(
                    subject, instance, _KillSwitch(kill_at)
                )
            if killed[0] != "error" or "_CheckpointKill" not in killed[1]:
                return self._violation(
                    subject,
                    instance,
                    f"{label}: injected kill at batch {kill_at}/{total} "
                    f"did not surface: {_summarize(killed)}",
                )

            # Leg 3: resume; the trace sink continues from the partial
            # bytes the killed process left behind.
            resume_sink = io.StringIO()
            resume_sink.write(kill_sink.getvalue())
            metrics = MetricsObserver()
            trace = JsonlTraceObserver(resume_sink)
            probe = _KillSwitch(None)
            with scoped(
                checkpointing(workdir, every_rounds=1, resume=True)
            ), observe_runs(metrics, trace, probe):
                resumed = run_outcome(subject, instance)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

        if resumed != baseline:
            return self._violation(
                subject,
                instance,
                f"{label}: resume after a kill at batch {kill_at}/"
                f"{total} diverges: baseline={_summarize(baseline)}, "
                f"resumed={_summarize(resumed)}",
            )
        if resume_sink.getvalue() != base_sink.getvalue():
            return self._violation(
                subject,
                instance,
                f"{label}: resumed JSONL trace bytes differ from the "
                f"uninterrupted run's (kill at batch {kill_at}/{total})",
            )
        if baseline[0] == "ok" and metrics.summary() != base_metrics.summary():
            return self._violation(
                subject,
                instance,
                f"{label}: resumed metrics summary differs from the "
                f"uninterrupted run's (kill at batch {kill_at}/{total})",
            )
        return None


class PartitionInvariance(Relation):
    """The sharded backend must be invisible to the algorithm: for the
    same (driver, instance, seed, fault plan), every shard count — and
    the seeded-random placement mode — must reproduce the serial fast
    engine's execution exactly.

    Per plan (bare, message noise, crash adversary) the fast engine
    runs once under the heaviest deterministic-plane observers (a
    ``MetricsObserver`` plus a per-vertex ``JsonlTraceObserver``), then
    the sharded backend runs at each count in :attr:`shard_counts`
    plus one 2-shard leg under ``mode="random"``.  Outcomes must match
    always; for runs that complete, the metrics summary and the full
    trace bytes must match too.  Raising runs are held to outcome
    equality only — the batch plane legally ends at the last completed
    round boundary while the scalar fast engine may emit a
    partial-round prefix (the same carve-out ObserverNeutrality makes).

    On hosts without the ``fork`` start method the sharded backend
    falls back to the fast engine, so the relation degenerates to a
    tautology rather than failing spuriously.
    """

    name = "partition-invariance"
    description = "sharded == fast at every shard count, faults included"

    #: Shard counts exercised per plan (1 pins the degenerate single-
    #: worker path; 4 forces multi-boundary routing at quick_n sizes).
    shard_counts: Tuple[int, ...] = (1, 2, 4)
    #: Placement seed for the extra random-mode leg.
    random_placement_seed: int = 0x5EED
    #: The message adversary (mirrors FaultPlanDeterminism's rates).
    drop_rate: float = 0.02
    corrupt_rate: float = 0.01
    round_budget: int = 512
    #: The crash adversary: exercises shard-local crash-stop plus the
    #: parent-side CrashStopFault reconstruction in the merged batches.
    crash_rate: float = 0.05
    crash_round: int = 1

    def applies_to(self, subject: Subject) -> bool:
        return True

    def plans_for(
        self, instance: Instance
    ) -> List[Optional[FaultPlan]]:
        return [
            None,
            FaultPlan(
                seed=mix64(instance.seed, 0x5A01),
                drop_rate=self.drop_rate,
                corrupt_rate=self.corrupt_rate,
                corrupt=_tag_corrupt,
                round_budget=self.round_budget,
            ),
            FaultPlan(
                seed=mix64(instance.seed, 0x5A02),
                crash_rate=self.crash_rate,
                crash_round=self.crash_round,
                round_budget=self.round_budget,
            ),
        ]

    def _observed(
        self, subject: Subject, instance: Instance
    ) -> Tuple[Outcome, str, Dict[str, Any]]:
        import io

        metrics = MetricsObserver()
        sink = io.StringIO()
        trace = JsonlTraceObserver(sink, node_steps=True)
        with observe_runs(metrics, trace):
            outcome = run_outcome(subject, instance)
        return outcome, sink.getvalue(), metrics.summary()

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        import contextlib

        from ..backends.sharded import use_shards

        for plan in self.plans_for(instance):

            def scoped() -> Any:
                stack = contextlib.ExitStack()
                if plan is not None:
                    stack.enter_context(inject_faults(plan))
                return stack

            plan_label = (
                "bare" if plan is None else "under a nonzero FaultPlan"
            )
            with scoped(), use_backend("fast"):
                base, base_trace, base_summary = self._observed(
                    subject, instance
                )
            legs = [
                (f"{count} contiguous shards", use_shards(count))
                for count in self.shard_counts
            ]
            legs.append(
                (
                    "2 random-placement shards",
                    use_shards(
                        2,
                        mode="random",
                        seed=self.random_placement_seed,
                    ),
                )
            )
            for leg_label, shards in legs:
                with scoped(), use_backend("sharded"), shards:
                    got, got_trace, got_summary = self._observed(
                        subject, instance
                    )
                if got != base:
                    return self._violation(
                        subject,
                        instance,
                        f"sharded backend at {leg_label} ({plan_label}) "
                        f"diverges from the fast engine: "
                        f"fast={_summarize(base)}, "
                        f"sharded={_summarize(got)}",
                    )
                if base[0] != "ok":
                    continue
                if got_trace != base_trace:
                    return self._violation(
                        subject,
                        instance,
                        f"JSONL trace bytes at {leg_label} "
                        f"({plan_label}) differ from the fast "
                        f"engine's",
                    )
                if got_summary != base_summary:
                    return self._violation(
                        subject,
                        instance,
                        f"metrics summary at {leg_label} "
                        f"({plan_label}) differs from the fast "
                        f"engine's",
                    )
        return None


class OrderInvariance(Relation):
    """Subjects declared ``order_invariant`` must produce identical
    outputs under any order-preserving remap of their IDs (the
    Naor–Stockmeyer order-invariance hypothesis)."""

    name = "order-invariance"
    description = "output depends only on the relative order of IDs"

    def applies_to(self, subject: Subject) -> bool:
        return subject.order_invariant and subject.accepts_ids

    def check(
        self, subject: Subject, instance: Instance
    ) -> Optional[RelationViolation]:
        ids = list(instance.ids)
        remapped = order_preserving_remap(
            ids, derive_rng(instance.seed, 0x6F6964)
        )
        base = run_outcome(subject, instance, ids=ids)
        stretched = run_outcome(subject, instance, ids=remapped)
        if base != stretched:
            return self._violation(
                subject,
                instance,
                f"output changed under an order-preserving ID remap: "
                f"{_summarize(base)} vs {_summarize(stretched)}",
            )
        return None


def _summarize(outcome: Outcome) -> str:
    kind, payload = outcome
    if kind == "error":
        return f"error({payload})"
    labeling, rounds = payload
    return f"ok(rounds={rounds}, labeling={list(labeling)!r})"


def standard_relations() -> List[Relation]:
    """The shipped catalogue, in documentation order."""
    return [
        IdRelabeling(),
        PortPermutation(),
        VertexOrderInvariance(),
        EngineEquivalence(),
        ObserverNeutrality(),
        FaultPlanDeterminism(),
        CheckpointResume(),
        PartitionInvariance(),
        OrderInvariance(),
    ]


__all__ = [
    "CheckpointResume",
    "EngineEquivalence",
    "FaultPlanDeterminism",
    "IdRelabeling",
    "ObserverNeutrality",
    "OrderInvariance",
    "Outcome",
    "PartitionInvariance",
    "PortPermutation",
    "Relation",
    "RelationViolation",
    "Subject",
    "VertexOrderInvariance",
    "capture",
    "run_outcome",
    "standard_relations",
    "subject_from_algorithm",
    "subject_from_spec",
]

"""The synchronous round engine for DetLOCAL and RandLOCAL.

:func:`run_local` executes a :class:`~repro.core.algorithm.SyncAlgorithm`
on a port-numbered graph under a chosen model, and returns a
:class:`RunResult` whose ``rounds`` field is the paper's only cost
measure — the number of synchronized communication rounds until every
vertex has halted.

Faithfulness guarantees:

- a vertex only ever reads values published by its graph neighbors in
  the *previous* round (double buffering — no same-round information
  leaks);
- local computation is free and messages are unbounded, as in the model;
- DetLOCAL vertices receive unique IDs and no randomness; RandLOCAL
  vertices receive private random streams and no IDs
  (:class:`~repro.core.context.NodeContext` enforces this);
- a run that exceeds ``max_rounds`` raises instead of under-reporting.

:func:`run_local` dispatches to a pluggable *backend* (see
:mod:`repro.core.backend`); four implementations share these
guarantees:

- ``"fast"`` (:func:`_run_local_fast`, the default) — the production
  engine.  It keeps a persistent ``visible`` list and commits only the
  publishes that actually changed (instead of re-materializing an O(n)
  snapshot every round), delivers inboxes through a flat CSR adjacency
  built once per run, and parks ``sleep_until`` vertices in round-keyed
  wake buckets so sleeping vertices are never scanned.  Per-round cost
  is O(awake + changed), which is what the paper's shattering analysis
  predicts the workload looks like: after a few rounds almost every
  vertex has halted.
- ``"reference"`` (:func:`run_local_reference`) — the original
  straight-line loop, kept deliberately simple.  The equivalence test
  suite runs every shipped algorithm under every registered backend and
  asserts identical :class:`RunResult`\\ s; see ``docs/performance.md``.
- ``"vectorized"`` (:mod:`repro.backends.vectorized`, optional) —
  whole rounds as numpy kernels over the CSR arrays, for the paper's
  asymptotic regime (n = 10^6 and up).  Requires the ``[perf]`` extra;
  drivers without a registered kernel fall back to the fast per-node
  loop.
- ``"sharded"`` (:mod:`repro.backends.sharded`) — the CSR graph
  partitioned across N forked worker processes, with only boundary
  messages exchanged at round barriers.  Bit-identical to the fast
  engine for every driver, shard count, and fault plan (the
  ``PartitionInvariance`` relation in ``repro.verify`` pins this);
  see ``docs/sharding.md``.

Both engines accept *observers* (``observers=[...]`` or ambiently via
:func:`observe_runs`): read-only spectators implementing the
``repro.obs.RunObserver`` callback protocol.  Dispatch is guarded by a
single ``hub is not None`` test, so runs without observers pay nothing,
and the two engines emit **identical event streams** for the same run —
per-node events are delivered in ascending vertex order and
bulk-accounted sleeping rounds are reported through synthesized
round-start/round-end events.  See ``docs/observability.md``.

Both engines also accept a *fault plan* (``fault_plan=...`` or
ambiently via :func:`inject_faults`): a seeded, deterministic adversary
(see :mod:`repro.faults`) that crash-stops chosen vertices, perturbs
message delivery per edge-port, and enforces a round budget.  Like
observers, the middleware is guarded by ``is not None`` tests so the
no-fault path stays on the perf baseline, and fault decisions are
hash-derived from ``(plan seed, round, vertex, port)`` — never from
sequential RNG draws — so the two engines inject the *same* faults and
stay bit-identical under any plan.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .algorithm import SyncAlgorithm
from .backend import (
    Runner,
    current_backend_name,
    get_backend,
    register_backend,
    use_backend,
)
from .checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    CheckpointSession,
    current_checkpoint_scope,
    standalone_scope,
)
from .context import Model, NodeContext
from .errors import DuplicateIDError, ReproError, SimulationError
from .ids import check_unique_ids, sequential_ids
from ..graphs.graph import Graph

#: Default safety cap on rounds; generously above any algorithm here.
DEFAULT_MAX_ROUNDS = 100_000

#: Round index observers see for events fired during ``setup`` (before
#: any communication round; matches ``ctx.now`` inside ``setup``).
SETUP_ROUND = -1


class _Clock:
    """Shared round counter visible to contexts via ``ctx.now``."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0


@dataclass
class RoundTrace:
    """Per-round observability snapshot (opt-in via ``trace=True``)."""

    #: Vertices not yet halted at the start of the round.
    active: int
    #: Vertices that actually executed a step (not sleeping).
    awake: int
    #: Vertices that halted during the round.
    halted: int


@dataclass
class RunResult:
    """Outcome of one engine run."""

    #: Per-vertex outputs (``None`` where a vertex failed or never halted).
    outputs: List[Any]
    #: Number of communication rounds executed (setup is round-free).
    rounds: int
    #: Total point-to-point messages delivered (2m per executed round).
    messages: int
    #: Vertices that declared failure, as ``{vertex: reason}``.
    failures: Dict[int, str] = field(default_factory=dict)
    #: Per-round activity snapshots (empty unless ``trace=True``).
    trace: List[RoundTrace] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no vertex declared failure."""
        return not self.failures

    def activity_profile(self) -> List[int]:
        """Awake-vertex counts per round (empty without tracing)."""
        return [t.awake for t in self.trace]

    def work(self) -> int:
        """Total vertex-steps executed (empty trace -> 0)."""
        return sum(t.awake for t in self.trace)


@dataclass(frozen=True)
class RunMeta:
    """Static facts about one engine run, handed to observers at
    ``on_run_start``.

    Every field except ``graph`` is a plain scalar so trace writers can
    serialize the metadata verbatim; ``graph`` is the in-process handle
    that graph-aware observers (locality accounting, shattering
    profiles) may *read* — observers are spectators and must never
    mutate it (static-analysis rule LM008).  The metadata is identical
    between :func:`run_local` and :func:`run_local_reference` so that
    traces stay byte-identical across engines.
    """

    algorithm: str
    model: Model
    n: int
    num_edges: int
    max_degree: int
    max_rounds: int
    seed: Optional[int] = None
    graph: Optional[Graph] = None


class _ObserverHub:
    """Fans one engine event out to every attached observer.

    The engines hold ``hub = None`` when nothing is attached, so the
    hot loop pays exactly one ``is not None`` test per vertex-step; all
    per-event work lives behind that guard.  Observer exceptions
    propagate — a broken observer must fail loudly, not silently skew
    what it measures.
    """

    __slots__ = ("observers",)

    def __init__(self, observers: Sequence[Any]) -> None:
        self.observers = tuple(observers)

    def run_start(self, meta: RunMeta) -> None:
        for obs in self.observers:
            obs.on_run_start(meta)

    def round_start(self, round_index: int, active: int) -> None:
        for obs in self.observers:
            obs.on_round_start(round_index, active)

    def node_step(
        self, round_index: int, vertex: int, ctx: NodeContext
    ) -> None:
        for obs in self.observers:
            obs.on_node_step(round_index, vertex, ctx)

    def publish(self, round_index: int, vertex: int, value: Any) -> None:
        for obs in self.observers:
            obs.on_publish(round_index, vertex, value)

    def halt(self, round_index: int, vertex: int, output: Any) -> None:
        for obs in self.observers:
            obs.on_halt(round_index, vertex, output)

    def failure(self, round_index: int, vertex: int, reason: str) -> None:
        for obs in self.observers:
            obs.on_failure(round_index, vertex, reason)

    def fault(
        self, round_index: int, vertex: Optional[int], fault: Any
    ) -> None:
        """An injected fault (``vertex`` is None for run-level faults
        like budget exhaustion)."""
        for obs in self.observers:
            obs.on_fault(round_index, vertex, fault)

    def round_end(
        self,
        round_index: int,
        awake: int,
        halted: int,
        messages: int,
    ) -> None:
        for obs in self.observers:
            obs.on_round_end(round_index, awake, halted, messages)

    def run_end(self, result: "RunResult") -> None:
        for obs in self.observers:
            obs.on_run_end(result)

    def run_abort(self, round_index: int, error: BaseException) -> None:
        """The run died (algorithm exception, injected budget, kill
        signal surfacing as ``KeyboardInterrupt``) before ``run_end``.
        Observers that buffer output flush here so partial runs keep
        their telemetry; the exception keeps propagating afterwards."""
        for obs in self.observers:
            obs.on_run_abort(round_index, error)


#: Ambiently attached observers (see :func:`observe_runs`).
_GLOBAL_OBSERVERS: Tuple[Any, ...] = ()

#: Ambiently attached fault plan (see :func:`inject_faults`).
_ACTIVE_FAULT_PLAN: Optional[Any] = None


@contextmanager
def inject_faults(plan: Any) -> Iterator[None]:
    """Attach a :class:`repro.faults.FaultPlan` to every engine run in
    scope.

    The fault counterpart of :func:`observe_runs`: multi-phase drivers
    call ``run_local`` internally and take no ``fault_plan`` argument,
    so an adversary for a whole driver execution is attached
    ambiently::

        with inject_faults(FaultPlan(seed=7, drop_rate=0.01)):
            pettie_su_tree_coloring(tree, seed=1)

    An explicit ``run_local(..., fault_plan=...)`` argument takes
    precedence over the ambient plan.  The previous plan is restored on
    exit even when the run raises; scopes nest (innermost wins).
    """
    global _ACTIVE_FAULT_PLAN
    previous = _ACTIVE_FAULT_PLAN
    _ACTIVE_FAULT_PLAN = plan
    try:
        yield
    finally:
        _ACTIVE_FAULT_PLAN = previous


def active_fault_plan() -> Optional[Any]:
    """The ambient fault plan installed by :func:`inject_faults` (or
    ``None`` outside any scope)."""
    return _ACTIVE_FAULT_PLAN


@contextmanager
def observe_runs(*observers: Any) -> Iterator[None]:
    """Attach ``observers`` to every ``run_local`` call in scope.

    The counterpart of :func:`use_reference_engine`: multi-phase
    drivers call ``run_local`` internally and take no ``observers``
    argument, so telemetry for a whole driver execution is attached
    ambiently::

        trace = JsonlTraceObserver("run.jsonl")
        with observe_runs(trace):
            pettie_su_tree_coloring(tree, seed=1)

    Nested scopes compose (inner observers are appended); the previous
    set is restored on exit even when the run raises.  Explicit
    ``run_local(..., observers=[...])`` observers are dispatched before
    ambient ones.
    """
    global _GLOBAL_OBSERVERS
    previous = _GLOBAL_OBSERVERS
    _GLOBAL_OBSERVERS = previous + tuple(observers)
    try:
        yield
    finally:
        _GLOBAL_OBSERVERS = previous


def _attached_observers(
    observers: Optional[Sequence[Any]],
) -> Tuple[Any, ...]:
    """Explicit observers first, then the ambient ``observe_runs`` set."""
    if observers:
        return tuple(observers) + _GLOBAL_OBSERVERS
    return _GLOBAL_OBSERVERS


def _run_setup(
    contexts: List[NodeContext],
    algorithm: SyncAlgorithm,
    clock: _Clock,
    hub: Optional[_ObserverHub],
) -> None:
    """Round-free setup pass, shared verbatim by both engines.

    Observer events fired here carry :data:`SETUP_ROUND` (-1): publishes
    and halts that happen before the first communication round.
    """
    for v, ctx in enumerate(contexts):
        ctx._clock = clock
        algorithm.setup(ctx)
        if hub is not None:
            if ctx._pub_dirty:
                hub.publish(SETUP_ROUND, v, ctx._next_pub)
            if ctx.failure is not None:
                hub.failure(SETUP_ROUND, v, ctx.failure)
            elif ctx.halted:
                hub.halt(SETUP_ROUND, v, ctx.output)
        ctx._commit()


def make_node_rngs(n: int, seed: Optional[int]) -> List[random.Random]:
    """Independent per-vertex random streams derived from a master seed.

    The derivation uses the engine-internal vertex index, which is never
    visible to the algorithm — RandLOCAL vertices stay undifferentiated.
    """
    master = random.Random(seed)
    return [random.Random(master.getrandbits(64)) for _ in range(n)]


def build_contexts(
    graph: Graph,
    model: Model,
    *,
    ids: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    node_inputs: Optional[Sequence[Dict[str, Any]]] = None,
    global_params: Optional[Dict[str, Any]] = None,
    rng_factory: Optional[Any] = None,
    allow_duplicate_ids: bool = False,
) -> List[NodeContext]:
    """Construct one context per vertex, validated for the model.

    ``rng_factory(v)`` (RandLOCAL only) overrides the per-vertex random
    stream — the hook used by the Theorem 3 derandomizer, which replaces
    true randomness with ``Random(φ(ID(v)))`` for a fixed seed function φ
    (making the whole execution a deterministic algorithm).

    ``allow_duplicate_ids`` waives the global-uniqueness configuration
    check: Theorems 5 and 6 deliberately run algorithms under IDs that
    are unique only within the algorithm's horizon.  The caller asserts
    that the algorithm never compares IDs of farther-apart vertices.

    The global parameters are *common knowledge by definition* (Section
    I), so all ``n`` contexts share one read-only mapping — a mutation
    attempt raises ``TypeError`` instead of silently diverging per node.
    """
    n = graph.num_vertices
    max_degree = graph.max_degree
    if model is Model.DET:
        if ids is None:
            ids = sequential_ids(n)
        if len(ids) != n:
            raise DuplicateIDError(f"need {n} IDs, got {len(ids)}")
        if not allow_duplicate_ids:
            check_unique_ids(ids)
        rngs: List[Optional[random.Random]] = [None] * n
    else:
        if ids is not None:
            raise SimulationError(
                "RandLOCAL vertices are undifferentiated; do not pass IDs"
            )
        ids = [None] * n  # type: ignore[list-item]
        if rng_factory is not None:
            rngs = [rng_factory(v) for v in range(n)]
        else:
            rngs = list(make_node_rngs(n, seed))
    shared_globals = MappingProxyType(dict(global_params or {}))
    contexts = []
    for v in range(n):
        node_input: Dict[str, Any] = dict(node_inputs[v]) if node_inputs else {}
        node_input["reverse_ports"] = graph.reverse_ports(v)
        contexts.append(
            NodeContext(
                index=v,
                degree=graph.degree(v),
                n=n,
                max_degree=max_degree,
                model=model,
                node_id=ids[v],
                rng=rngs[v],
                node_input=node_input,
                global_params=shared_globals,
            )
        )
    return contexts


def flat_adjacency(graph: Graph) -> Tuple[List[int], List[int]]:
    """The graph's adjacency as flat CSR arrays ``(offsets, targets)``.

    ``targets[offsets[v]:offsets[v + 1]]`` lists ``v``'s neighbors in
    port order.  Built once per run; the hot loop then delivers inboxes
    with plain list indexing instead of per-step method dispatch.
    """
    n = graph.num_vertices
    offsets = [0] * (n + 1)
    targets: List[int] = []
    extend = targets.extend
    for v in range(n):
        extend(graph.neighbors(v))
        offsets[v + 1] = len(targets)
    return offsets, targets


@contextmanager
def use_reference_engine() -> Iterator[None]:
    """Route every :func:`run_local` call to the reference engine.

    Lets the equivalence suite execute whole multi-phase drivers (which
    call ``run_local`` internally) under the kept-simple implementation
    without touching their code.  Kept as a compatibility alias for
    ``use_backend("reference")`` (see :mod:`repro.core.backend`).
    """
    with use_backend("reference"):
        yield


def run_local(
    graph: Graph,
    algorithm: SyncAlgorithm,
    model: Model,
    *,
    ids: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    node_inputs: Optional[Sequence[Dict[str, Any]]] = None,
    global_params: Optional[Dict[str, Any]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    rng_factory: Optional[Any] = None,
    allow_duplicate_ids: bool = False,
    trace: bool = False,
    observers: Optional[Sequence[Any]] = None,
    fault_plan: Optional[Any] = None,
    backend: Optional[str] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> RunResult:
    """Run ``algorithm`` on ``graph`` under ``model``.

    Parameters
    ----------
    ids:
        DetLOCAL only — unique vertex IDs (defaults to ``0..n-1``).
    seed:
        RandLOCAL only — master seed for the per-vertex random streams.
    node_inputs:
        Optional per-vertex input labels, e.g.
        ``{"edge_colors": [c_port0, c_port1, ...]}`` for the sinkless
        problems.
    global_params:
        Extra common-knowledge parameters, available as ``ctx.globals``
        (one shared read-only mapping).
    max_rounds:
        Safety cap; exceeding it raises :class:`SimulationError`.
    observers:
        Read-only spectators implementing the ``repro.obs.RunObserver``
        callback protocol (combined with any ambient
        :func:`observe_runs` observers).  Attaching observers never
        changes the :class:`RunResult`; with none attached the
        dispatch costs one pointer test per vertex-step.
    fault_plan:
        A :class:`repro.faults.FaultPlan` adversary (overrides any
        ambient :func:`inject_faults` plan).  Fault decisions are a
        deterministic function of the plan seed and the (round, vertex,
        port) coordinates, so a plan perturbs every backend
        identically; with no plan attached the middleware costs one
        pointer test per vertex-step.
    backend:
        Engine backend name (see :mod:`repro.core.backend`).  Overrides
        the ambient :func:`~repro.core.backend.use_backend` scope and
        the ``REPRO_BACKEND`` environment variable; defaults to
        ``"fast"``.  Every backend returns the identical
        :class:`RunResult` — selection is a performance choice, never a
        semantic one.
    checkpoint:
        A :class:`~repro.core.checkpoint.CheckpointPolicy` — snapshot
        the run's complete resumable state at round boundaries, and
        (with ``resume=True``) restore from an existing snapshot so
        the run reproduces the uninterrupted execution byte-for-byte.
        Overrides any ambient :func:`~repro.core.checkpoint.checkpointing`
        scope; requires a backend with the
        ``capture_state``/``restore_state`` capability and
        checkpoint-capable observers.  ``None`` (the default) keeps the
        engine on the no-checkpoint hot path.

    Returns
    -------
    RunResult
        Outputs, exact round count, message count, declared failures.
    """
    name = backend if backend is not None else current_backend_name()
    # Resolve every name — including the default — through the
    # registry, so register_backend("fast", ...) replacements are
    # honored exactly as the registry API documents.
    be = get_backend(name)
    runner: Runner = be.load()
    session: Optional[CheckpointSession] = None
    if checkpoint is not None:
        session = standalone_scope(checkpoint).next_session()
    else:
        scope = current_checkpoint_scope()
        if scope is not None:
            session = scope.next_session()
    if session is None:
        # No checkpointing anywhere in scope: call the runner exactly
        # as before (custom-registered backends need not know the
        # ``checkpoint`` keyword exists).
        return runner(
            graph,
            algorithm,
            model,
            ids=ids,
            seed=seed,
            node_inputs=node_inputs,
            global_params=global_params,
            max_rounds=max_rounds,
            rng_factory=rng_factory,
            allow_duplicate_ids=allow_duplicate_ids,
            trace=trace,
            observers=observers,
            fault_plan=fault_plan,
        )
    plan = fault_plan if fault_plan is not None else _ACTIVE_FAULT_PLAN
    fault_fp: Optional[Dict[str, Any]] = None
    if plan is not None:
        # A stable, process-independent plan identity (never repr():
        # hook callables embed memory addresses).
        fault_fp = {
            "seed": getattr(plan, "seed", None),
            "crash_rate": getattr(plan, "crash_rate", None),
            "drop_rate": getattr(plan, "drop_rate", None),
            "duplicate_rate": getattr(plan, "duplicate_rate", None),
            "corrupt_rate": getattr(plan, "corrupt_rate", None),
            "round_budget": getattr(plan, "round_budget", None),
        }
    session.bind(
        be,
        _attached_observers(observers),
        {
            "algorithm": algorithm.name,
            "model": model.value,
            "n": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": seed,
            "max_rounds": max_rounds,
            "trace": trace,
            "backend": name,
            "slot": session.slot,
            "faults": fault_fp,
        },
    )
    if session.begin():
        # The slot already finished in the interrupted process: replay
        # its recorded result without re-running the engine (observers
        # were restored to their end-of-slot positions by begin()).
        result: RunResult = session.done_result()
        return result
    result = runner(
        graph,
        algorithm,
        model,
        ids=ids,
        seed=seed,
        node_inputs=node_inputs,
        global_params=global_params,
        max_rounds=max_rounds,
        rng_factory=rng_factory,
        allow_duplicate_ids=allow_duplicate_ids,
        trace=trace,
        observers=observers,
        fault_plan=fault_plan,
        checkpoint=session,
    )
    session.record_done(result)
    return result


class _ScalarState:
    """Checkpoint handle for the scalar engines (fast and reference).

    A thin view over one run's mutable state: the engines construct it
    at each due round boundary (save) or once at startup (restore); the
    capture/restore functions below are the ``"fast"`` and
    ``"reference"`` backends' registered checkpoint capability.
    """

    __slots__ = ("contexts", "faults", "rounds", "messages", "traces")

    def __init__(
        self,
        contexts: List[NodeContext],
        faults: Optional[Any],
        rounds: int = 0,
        messages: int = 0,
        traces: Optional[List[RoundTrace]] = None,
    ) -> None:
        self.contexts = contexts
        self.faults = faults
        self.rounds = rounds
        self.messages = messages
        self.traces: List[RoundTrace] = traces if traces is not None else []


def _capture_scalar_state(state: _ScalarState) -> Dict[str, Any]:
    """Serialize a round-boundary scalar snapshot (format ``"scalar"``).

    Taken strictly at round boundaries, where the dirty-commit pass has
    already run: every context has ``_pub_dirty == False`` and the fast
    engine's ``visible`` list equals ``[ctx._pub ...]``, so published
    values alone reconstruct the visible plane.  Wake buckets are not
    stored — they are an index over ``ctx._wake_round``, rebuilt on
    restore.
    """
    nodes: List[Tuple[Any, ...]] = []
    for ctx in state.contexts:
        nodes.append(
            (
                ctx.state,
                ctx.input,
                ctx._pub,
                ctx._wake_round,
                ctx.halted,
                ctx.output,
                ctx.failure,
                ctx.failure_round,
                ctx._rng.getstate() if ctx._rng is not None else None,
            )
        )
    faults = state.faults
    fault_last = (
        dict(faults._last)
        if faults is not None and faults._last is not None
        else None
    )
    return {
        "format": "scalar",
        "rounds": state.rounds,
        "messages": state.messages,
        "traces": list(state.traces),
        "nodes": nodes,
        "fault_last": fault_last,
    }


def _restore_scalar_state(
    state: _ScalarState, payload: Dict[str, Any]
) -> None:
    """Apply a ``"scalar"`` snapshot onto freshly built contexts."""
    state.rounds = payload["rounds"]
    state.messages = payload["messages"]
    state.traces[:] = payload["traces"]
    nodes = payload["nodes"]
    if len(nodes) != len(state.contexts):
        raise CheckpointError(
            f"snapshot holds {len(nodes)} vertices but the run has "
            f"{len(state.contexts)} — resume on the same graph"
        )
    for ctx, snap in zip(state.contexts, nodes):
        (
            ctx.state,
            ctx.input,
            pub,
            ctx._wake_round,
            ctx.halted,
            ctx.output,
            ctx.failure,
            ctx.failure_round,
            rng_state,
        ) = snap
        ctx._pub = pub
        ctx._next_pub = pub
        ctx._pub_dirty = False
        if rng_state is not None:
            assert ctx._rng is not None
            ctx._rng.setstate(rng_state)
    faults = state.faults
    if faults is not None and faults._last is not None:
        faults._last.clear()
        last = payload.get("fault_last")
        if last:
            faults._last.update(last)


def _run_local_fast(
    graph: Graph,
    algorithm: SyncAlgorithm,
    model: Model,
    *,
    ids: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    node_inputs: Optional[Sequence[Dict[str, Any]]] = None,
    global_params: Optional[Dict[str, Any]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    rng_factory: Optional[Any] = None,
    allow_duplicate_ids: bool = False,
    trace: bool = False,
    observers: Optional[Sequence[Any]] = None,
    fault_plan: Optional[Any] = None,
    checkpoint: Optional[CheckpointSession] = None,
) -> RunResult:
    """The ``"fast"`` backend: the production per-node round loop.

    Engine invariants (identical to :func:`run_local_reference`; the
    equivalence suite enforces this):

    - **dirty-commit**: a publish becomes visible only after every step
      of the publishing round returned — commits are deferred to a
      separate pass over the (few) dirty vertices, so double buffering
      is preserved while costing O(changed), not O(n);
    - **wake buckets**: a vertex sleeping until round ``w`` is parked in
      ``buckets[w]`` and touched exactly once, when round ``w`` starts.
      Rounds in which every live vertex sleeps are accounted in bulk
      (round and message counters advance; nobody is scanned).
    """
    contexts = build_contexts(
        graph,
        model,
        ids=ids,
        seed=seed,
        node_inputs=node_inputs,
        global_params=global_params,
        rng_factory=rng_factory,
        allow_duplicate_ids=allow_duplicate_ids,
    )
    n = graph.num_vertices
    attached = _attached_observers(observers)
    hub = _ObserverHub(attached) if attached else None
    meta = RunMeta(
        algorithm=algorithm.name,
        model=model,
        n=n,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        max_rounds=max_rounds,
        seed=seed,
        graph=graph,
    )
    plan = fault_plan if fault_plan is not None else _ACTIVE_FAULT_PLAN
    faults = plan.activate(meta) if plan is not None else None
    clock = _Clock()
    state = _ScalarState(contexts, faults)
    resumed = (
        checkpoint.engine_payload("scalar")
        if checkpoint is not None
        else None
    )
    rounds = 0
    messages = 0
    try:
        if resumed is not None:
            # Resume: the snapshot replaces run_start + setup — the
            # restored observers already emitted those events in the
            # interrupted process, and restored contexts already carry
            # their post-setup state.
            checkpoint.restore_engine(state, resumed)
            for ctx in contexts:
                ctx._clock = clock
            clock.now = state.rounds
        else:
            if hub is not None:
                hub.run_start(meta)
            _run_setup(contexts, algorithm, clock, hub)

        #: Persistent per-vertex visible values; updated in place by the
        #: dirty-commit pass instead of being rebuilt every round.
        visible: List[Any] = [ctx._pub for ctx in contexts]
        offsets, targets = flat_adjacency(graph)

        rounds = state.rounds
        messages = state.messages
        messages_per_round = 2 * graph.num_edges
        traces: List[RoundTrace] = state.traces

        #: wake round -> vertices parked until that round.  Rebuilt from
        #: ``ctx._wake_round`` on resume: entries due at or before the
        #: current round boundary are runnable (the original run would
        #: pop them at this round's start), later ones re-park.
        buckets: Dict[int, List[int]] = {}
        parked = 0
        runnable: List[int] = []
        for v in range(n):
            ctx = contexts[v]
            if ctx.halted:
                continue
            wake = ctx._wake_round
            if wake is not None and wake > rounds:
                buckets.setdefault(wake, []).append(v)
                parked += 1
            else:
                runnable.append(v)

        step = algorithm.step
        budget = faults.budget if faults is not None else None
        deliver = (
            faults.deliver
            if faults is not None and faults.touches_messages
            else None
        )
        while runnable or parked:
            if checkpoint is not None and checkpoint.due(rounds):
                state.rounds = rounds
                state.messages = messages
                checkpoint.save(state, rounds)
            if budget is not None and rounds >= budget:
                budget_error = faults.budget_error(rounds)
                if hub is not None:
                    hub.fault(rounds, None, budget_error)
                raise budget_error
            if rounds >= max_rounds:
                raise SimulationError(
                    f"{algorithm.name!r} exceeded {max_rounds} rounds on "
                    f"n={n} (likely non-terminating)",
                    round=rounds,
                    run_meta=meta,
                )
            if parked:
                due = buckets.pop(rounds, None)
                if due:
                    parked -= len(due)
                    runnable.extend(due)
                if not runnable:
                    # Every live vertex sleeps: advance the round and
                    # message accounting in bulk up to the next wake (or the
                    # cap, where the guard above raises), scanning nobody.
                    # The skipped span is still fully observable: each
                    # bulk-accounted round gets a synthesized trace entry
                    # and round-start/round-end events carrying the same
                    # active/awake/halted counts the reference engine
                    # reports for it (all parked vertices active, nobody
                    # awake, nobody halting).  An injected round budget
                    # clamps the skip so the budget check above fires at
                    # exactly the same round as in the reference engine.
                    skip_to = min(min(buckets), max_rounds)
                    if budget is not None and budget < skip_to:
                        skip_to = budget
                    skip = skip_to - rounds
                    if trace:
                        traces.extend(
                            RoundTrace(active=parked, awake=0, halted=0)
                            for _ in range(skip)
                        )
                    if hub is not None:
                        for r in range(rounds, rounds + skip):
                            hub.round_start(r, parked)
                            hub.round_end(r, 0, 0, messages_per_round)
                    rounds += skip
                    messages += skip * messages_per_round
                    continue
            clock.now = rounds
            if hub is not None:
                # Canonical event order: the reference engine scans
                # vertices ascending, so the observed fast engine does too
                # (per-round vertex steps are order-independent under
                # double buffering — RunResult is unchanged).
                runnable.sort()
                hub.round_start(rounds, len(runnable) + parked)
            active_now = len(runnable) + parked
            awake_now = len(runnable)
            halted_this_round = 0
            dirty: List[int] = []
            next_runnable: List[int] = []
            for v in runnable:
                ctx = contexts[v]
                ctx._wake_round = None
                if faults is not None and faults.crashed(rounds, v):
                    # Crash-stop: the vertex never steps this round (or
                    # again).  It counts as awake (it was scheduled) and
                    # halted; its last published value stays visible, like
                    # a halted processor's.  No delivery happens, so the
                    # stale-duplicate bookkeeping stays engine-identical.
                    reason = faults.crash_reason(rounds)
                    ctx.fail(reason)
                    halted_this_round += 1
                    if hub is not None:
                        hub.fault(rounds, v, faults.crash_event(rounds, v))
                        hub.failure(rounds, v, reason)
                    continue
                lo = offsets[v]
                hi = offsets[v + 1]
                inbox = [visible[u] for u in targets[lo:hi]]
                if deliver is not None:
                    events = deliver(rounds, v, inbox, hub is not None)
                    if events and hub is not None:
                        for injected in events:
                            hub.fault(rounds, v, injected)
                step(ctx, inbox)
                if ctx._pub_dirty:
                    dirty.append(v)
                if ctx.halted:
                    halted_this_round += 1
                else:
                    wake = ctx._wake_round
                    if wake is not None and wake > rounds + 1:
                        buckets.setdefault(wake, []).append(v)
                        parked += 1
                    else:
                        next_runnable.append(v)
                if hub is not None:
                    hub.node_step(rounds, v, ctx)
                    if ctx._pub_dirty:
                        hub.publish(rounds, v, ctx._next_pub)
                    if ctx.failure is not None:
                        hub.failure(rounds, v, ctx.failure)
                    elif ctx.halted:
                        hub.halt(rounds, v, ctx.output)
            # Deferred dirty-commit pass: no publish became visible before
            # every step of this round finished (double buffering).
            for v in dirty:
                ctx = contexts[v]
                ctx._pub = ctx._next_pub
                ctx._pub_dirty = False
                visible[v] = ctx._pub
            if trace:
                traces.append(
                    RoundTrace(
                        active=active_now,
                        awake=awake_now,
                        halted=halted_this_round,
                    )
                )
            if hub is not None:
                hub.round_end(
                    rounds, awake_now, halted_this_round, messages_per_round
                )
            runnable = next_runnable
            rounds += 1
            messages += messages_per_round
    except BaseException as exc:
        if hub is not None:
            hub.run_abort(rounds, exc)
        raise

    failures = {
        v: ctx.failure for v, ctx in enumerate(contexts) if ctx.failure
    }
    outputs = [ctx.output for ctx in contexts]
    result = RunResult(
        outputs=outputs,
        rounds=rounds,
        messages=messages,
        failures=failures,
        trace=traces,
    )
    if hub is not None:
        hub.run_end(result)
    return result


def _load_vectorized_backend() -> Runner:
    """Resolve the numpy whole-round backend (the ``[perf]`` extra).

    Imported lazily and by name so that neither :mod:`repro.core` nor
    the type-checked layer ever depends on numpy being installed.
    """
    import importlib

    try:
        module = importlib.import_module("repro.backends.vectorized")
    except ImportError as exc:
        raise ReproError(
            "the 'vectorized' backend requires numpy, which is not "
            "installed; install the perf extra: "
            "pip install 'repro[perf]'"
        ) from exc
    runner: Runner = module.run_local_vectorized
    return runner


def run_local_reference(
    graph: Graph,
    algorithm: SyncAlgorithm,
    model: Model,
    *,
    ids: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    node_inputs: Optional[Sequence[Dict[str, Any]]] = None,
    global_params: Optional[Dict[str, Any]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    rng_factory: Optional[Any] = None,
    allow_duplicate_ids: bool = False,
    trace: bool = False,
    observers: Optional[Sequence[Any]] = None,
    fault_plan: Optional[Any] = None,
    checkpoint: Optional[CheckpointSession] = None,
) -> RunResult:
    """The kept-simple engine: full snapshot and full scan every round.

    Semantically identical to :func:`run_local` (same signature, same
    :class:`RunResult` down to the trace), but O(n) per round regardless
    of how many vertices are awake.  It exists as the oracle for the
    equivalence suite and as the baseline the perf harness measures
    speedups against; it must stay a direct transcription of the model.

    Observers attached here see the exact same event stream as under
    the fast engine — the telemetry determinism contract the
    equivalence suite pins down.  Fault plans likewise inject the exact
    same faults: decisions are hash-derived per (round, vertex, port),
    never drawn sequentially, so vertex scan order cannot skew them.
    """
    contexts = build_contexts(
        graph,
        model,
        ids=ids,
        seed=seed,
        node_inputs=node_inputs,
        global_params=global_params,
        rng_factory=rng_factory,
        allow_duplicate_ids=allow_duplicate_ids,
    )
    n = graph.num_vertices
    attached = _attached_observers(observers)
    hub = _ObserverHub(attached) if attached else None
    meta = RunMeta(
        algorithm=algorithm.name,
        model=model,
        n=n,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        max_rounds=max_rounds,
        seed=seed,
        graph=graph,
    )
    plan = fault_plan if fault_plan is not None else _ACTIVE_FAULT_PLAN
    faults = plan.activate(meta) if plan is not None else None
    clock = _Clock()
    state = _ScalarState(contexts, faults)
    resumed = (
        checkpoint.engine_payload("scalar")
        if checkpoint is not None
        else None
    )
    rounds = 0
    messages = 0
    try:
        if resumed is not None:
            # Resume: the snapshot replaces run_start + setup (see the
            # fast engine); the active list below is an index over the
            # restored halt flags, so it needs no stored counterpart.
            checkpoint.restore_engine(state, resumed)
            for ctx in contexts:
                ctx._clock = clock
            clock.now = state.rounds
        else:
            if hub is not None:
                hub.run_start(meta)
            _run_setup(contexts, algorithm, clock, hub)

        rounds = state.rounds
        messages = state.messages
        messages_per_round = 2 * graph.num_edges
        traces: List[RoundTrace] = state.traces
        active = [v for v in range(n) if not contexts[v].halted]
        budget = faults.budget if faults is not None else None
        deliver = (
            faults.deliver
            if faults is not None and faults.touches_messages
            else None
        )
        while active:
            if checkpoint is not None and checkpoint.due(rounds):
                state.rounds = rounds
                state.messages = messages
                checkpoint.save(state, rounds)
            if budget is not None and rounds >= budget:
                budget_error = faults.budget_error(rounds)
                if hub is not None:
                    hub.fault(rounds, None, budget_error)
                raise budget_error
            if rounds >= max_rounds:
                raise SimulationError(
                    f"{algorithm.name!r} exceeded {max_rounds} rounds on "
                    f"n={n} (likely non-terminating)",
                    round=rounds,
                    run_meta=meta,
                )
            clock.now = rounds
            if hub is not None:
                hub.round_start(rounds, len(active))
            snapshot = [ctx._pub for ctx in contexts]
            dirty = False
            awake = 0
            halted_this_round = 0
            for v in active:
                ctx = contexts[v]
                wake = ctx._wake_round
                if wake is not None and wake > rounds:
                    continue
                ctx._wake_round = None
                awake += 1
                if faults is not None and faults.crashed(rounds, v):
                    # Mirror of the fast engine's crash-stop block: counts
                    # as awake + halted, never steps, delivery skipped.
                    reason = faults.crash_reason(rounds)
                    ctx.fail(reason)
                    dirty = True
                    halted_this_round += 1
                    if hub is not None:
                        hub.fault(rounds, v, faults.crash_event(rounds, v))
                        hub.failure(rounds, v, reason)
                    continue
                inbox = [snapshot[u] for u in graph.neighbors(v)]
                if deliver is not None:
                    events = deliver(rounds, v, inbox, hub is not None)
                    if events and hub is not None:
                        for injected in events:
                            hub.fault(rounds, v, injected)
                algorithm.step(ctx, inbox)
                if ctx.halted:
                    dirty = True
                    halted_this_round += 1
                if hub is not None:
                    hub.node_step(rounds, v, ctx)
                    if ctx._pub_dirty:
                        hub.publish(rounds, v, ctx._next_pub)
                    if ctx.failure is not None:
                        hub.failure(rounds, v, ctx.failure)
                    elif ctx.halted:
                        hub.halt(rounds, v, ctx.output)
            for v in active:
                contexts[v]._commit()
            if trace:
                traces.append(
                    RoundTrace(
                        active=len(active),
                        awake=awake,
                        halted=halted_this_round,
                    )
                )
            if hub is not None:
                hub.round_end(
                    rounds, awake, halted_this_round, messages_per_round
                )
            if dirty:
                active = [v for v in active if not contexts[v].halted]
            rounds += 1
            messages += messages_per_round
    except BaseException as exc:
        if hub is not None:
            hub.run_abort(rounds, exc)
        raise

    failures = {
        v: ctx.failure for v, ctx in enumerate(contexts) if ctx.failure
    }
    outputs = [ctx.output for ctx in contexts]
    result = RunResult(
        outputs=outputs,
        rounds=rounds,
        messages=messages,
        failures=failures,
        trace=traces,
    )
    if hub is not None:
        hub.run_end(result)
    return result


def _capture_vectorized_state(handle: Any) -> Dict[str, Any]:
    """Checkpoint capability for the ``"vectorized"`` backend.

    Dispatches on the handle shape: drivers without a registered kernel
    fall back to the fast per-node loop, whose handle is a
    :class:`_ScalarState` — those snapshots are scalar-format so a
    resume lands back on the identical fallback path.  Imported lazily
    so the capability can register without numpy installed.
    """
    if isinstance(handle, _ScalarState):
        return _capture_scalar_state(handle)
    from ..backends.vectorized import capture_vector_state

    result: Dict[str, Any] = capture_vector_state(handle)
    return result


def _restore_vectorized_state(handle: Any, payload: Dict[str, Any]) -> None:
    if isinstance(handle, _ScalarState):
        _restore_scalar_state(handle, payload)
        return
    from ..backends.vectorized import restore_vector_state

    restore_vector_state(handle, payload)


def _load_sharded_backend() -> Runner:
    """Resolve the multi-process sharded backend.

    Pure Python (no optional dependency), but imported lazily like the
    vectorized backend so :mod:`repro.core` never imports
    :mod:`multiprocessing` machinery it might not use.
    """
    import importlib

    module = importlib.import_module("repro.backends.sharded")
    runner: Runner = module.run_local_sharded
    return runner


def _capture_sharded_state(handle: Any) -> Dict[str, Any]:
    """Checkpoint capability for the ``"sharded"`` backend.

    Dispatches on the handle shape, exactly like the vectorized
    capability: runs that fell back to the per-node loop (non-batch
    observers, no fork support, daemonic pool workers) carry a
    :class:`_ScalarState`; native sharded runs carry the coordinator's
    handle, whose capture gathers per-shard state over the barrier.
    Both snapshot formats are ``"scalar"``, so any snapshot resumes at
    any shard count — or on any scalar-compatible backend.
    """
    if isinstance(handle, _ScalarState):
        return _capture_scalar_state(handle)
    from ..backends.sharded import capture_sharded_state

    result: Dict[str, Any] = capture_sharded_state(handle)
    return result


def _restore_sharded_state(handle: Any, payload: Dict[str, Any]) -> None:
    if isinstance(handle, _ScalarState):
        _restore_scalar_state(handle, payload)
        return
    from ..backends.sharded import restore_sharded_state

    restore_sharded_state(handle, payload)


register_backend(
    "fast",
    lambda: _run_local_fast,
    description="production per-node loop (dirty-commit, wake buckets)",
    capture_state=_capture_scalar_state,
    restore_state=_restore_scalar_state,
)
register_backend(
    "reference",
    lambda: run_local_reference,
    description="kept-simple oracle loop (full snapshot, full scan)",
    capture_state=_capture_scalar_state,
    restore_state=_restore_scalar_state,
)
register_backend(
    "vectorized",
    _load_vectorized_backend,
    description="numpy whole-round kernels over the CSR adjacency "
    "(requires the [perf] extra; per-node fallback for drivers "
    "without a kernel)",
    capture_state=_capture_vectorized_state,
    restore_state=_restore_vectorized_state,
)
register_backend(
    "sharded",
    _load_sharded_backend,
    description="multi-process shard workers over a deterministic "
    "vertex partition (boundary messages at round barriers; "
    "REPRO_SHARDS / --shards selects the shard count)",
    capture_state=_capture_sharded_state,
    restore_state=_restore_sharded_state,
)

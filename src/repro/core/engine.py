"""The synchronous round engine for DetLOCAL and RandLOCAL.

:func:`run_local` executes a :class:`~repro.core.algorithm.SyncAlgorithm`
on a port-numbered graph under a chosen model, and returns a
:class:`RunResult` whose ``rounds`` field is the paper's only cost
measure — the number of synchronized communication rounds until every
vertex has halted.

Faithfulness guarantees:

- a vertex only ever reads values published by its graph neighbors in
  the *previous* round (double buffering — no same-round information
  leaks);
- local computation is free and messages are unbounded, as in the model;
- DetLOCAL vertices receive unique IDs and no randomness; RandLOCAL
  vertices receive private random streams and no IDs
  (:class:`~repro.core.context.NodeContext` enforces this);
- a run that exceeds ``max_rounds`` raises instead of under-reporting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .algorithm import SyncAlgorithm
from .context import Model, NodeContext
from .errors import DuplicateIDError, SimulationError
from .ids import check_unique_ids, sequential_ids
from ..graphs.graph import Graph

#: Default safety cap on rounds; generously above any algorithm here.
DEFAULT_MAX_ROUNDS = 100_000


class _Clock:
    """Shared round counter visible to contexts via ``ctx.now``."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0


@dataclass
class RoundTrace:
    """Per-round observability snapshot (opt-in via ``trace=True``)."""

    #: Vertices not yet halted at the start of the round.
    active: int
    #: Vertices that actually executed a step (not sleeping).
    awake: int
    #: Vertices that halted during the round.
    halted: int


@dataclass
class RunResult:
    """Outcome of one engine run."""

    #: Per-vertex outputs (``None`` where a vertex failed or never halted).
    outputs: List[Any]
    #: Number of communication rounds executed (setup is round-free).
    rounds: int
    #: Total point-to-point messages delivered (2m per executed round).
    messages: int
    #: Vertices that declared failure, as ``{vertex: reason}``.
    failures: Dict[int, str] = field(default_factory=dict)
    #: Per-round activity snapshots (empty unless ``trace=True``).
    trace: List[RoundTrace] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no vertex declared failure."""
        return not self.failures

    def activity_profile(self) -> List[int]:
        """Awake-vertex counts per round (empty without tracing)."""
        return [t.awake for t in self.trace]

    def work(self) -> int:
        """Total vertex-steps executed (empty trace -> 0)."""
        return sum(t.awake for t in self.trace)


def make_node_rngs(n: int, seed: Optional[int]) -> List[random.Random]:
    """Independent per-vertex random streams derived from a master seed.

    The derivation uses the engine-internal vertex index, which is never
    visible to the algorithm — RandLOCAL vertices stay undifferentiated.
    """
    master = random.Random(seed)
    return [random.Random(master.getrandbits(64)) for _ in range(n)]


def build_contexts(
    graph: Graph,
    model: Model,
    *,
    ids: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    node_inputs: Optional[Sequence[Dict[str, Any]]] = None,
    global_params: Optional[Dict[str, Any]] = None,
    rng_factory: Optional[Any] = None,
    allow_duplicate_ids: bool = False,
) -> List[NodeContext]:
    """Construct one context per vertex, validated for the model.

    ``rng_factory(v)`` (RandLOCAL only) overrides the per-vertex random
    stream — the hook used by the Theorem 3 derandomizer, which replaces
    true randomness with ``Random(φ(ID(v)))`` for a fixed seed function φ
    (making the whole execution a deterministic algorithm).

    ``allow_duplicate_ids`` waives the global-uniqueness configuration
    check: Theorems 5 and 6 deliberately run algorithms under IDs that
    are unique only within the algorithm's horizon.  The caller asserts
    that the algorithm never compares IDs of farther-apart vertices.
    """
    n = graph.num_vertices
    max_degree = graph.max_degree
    if model is Model.DET:
        if ids is None:
            ids = sequential_ids(n)
        if len(ids) != n:
            raise DuplicateIDError(f"need {n} IDs, got {len(ids)}")
        if not allow_duplicate_ids:
            check_unique_ids(ids)
        rngs: List[Optional[random.Random]] = [None] * n
    else:
        if ids is not None:
            raise SimulationError(
                "RandLOCAL vertices are undifferentiated; do not pass IDs"
            )
        ids = [None] * n  # type: ignore[list-item]
        if rng_factory is not None:
            rngs = [rng_factory(v) for v in range(n)]
        else:
            rngs = list(make_node_rngs(n, seed))
    contexts = []
    for v in range(n):
        node_input: Dict[str, Any] = dict(node_inputs[v]) if node_inputs else {}
        node_input["reverse_ports"] = [
            graph.reverse_port(v, p) for p in range(graph.degree(v))
        ]
        contexts.append(
            NodeContext(
                index=v,
                degree=graph.degree(v),
                n=n,
                max_degree=max_degree,
                model=model,
                node_id=ids[v],
                rng=rngs[v],
                node_input=node_input,
                global_params=dict(global_params or {}),
            )
        )
    return contexts


def run_local(
    graph: Graph,
    algorithm: SyncAlgorithm,
    model: Model,
    *,
    ids: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    node_inputs: Optional[Sequence[Dict[str, Any]]] = None,
    global_params: Optional[Dict[str, Any]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    rng_factory: Optional[Any] = None,
    allow_duplicate_ids: bool = False,
    trace: bool = False,
) -> RunResult:
    """Run ``algorithm`` on ``graph`` under ``model``.

    Parameters
    ----------
    ids:
        DetLOCAL only — unique vertex IDs (defaults to ``0..n-1``).
    seed:
        RandLOCAL only — master seed for the per-vertex random streams.
    node_inputs:
        Optional per-vertex input labels, e.g.
        ``{"edge_colors": [c_port0, c_port1, ...]}`` for the sinkless
        problems.
    global_params:
        Extra common-knowledge parameters, available as ``ctx.globals``.
    max_rounds:
        Safety cap; exceeding it raises :class:`SimulationError`.

    Returns
    -------
    RunResult
        Outputs, exact round count, message count, declared failures.
    """
    contexts = build_contexts(
        graph,
        model,
        ids=ids,
        seed=seed,
        node_inputs=node_inputs,
        global_params=global_params,
        rng_factory=rng_factory,
        allow_duplicate_ids=allow_duplicate_ids,
    )
    n = graph.num_vertices
    clock = _Clock()
    for ctx in contexts:
        ctx._clock = clock
        algorithm.setup(ctx)
        ctx._commit()

    rounds = 0
    messages = 0
    messages_per_round = 2 * graph.num_edges
    traces: List[RoundTrace] = []
    active = [v for v in range(n) if not contexts[v].halted]
    while active:
        if rounds >= max_rounds:
            raise SimulationError(
                f"{algorithm.name!r} exceeded {max_rounds} rounds on "
                f"n={n} (likely non-terminating)"
            )
        clock.now = rounds
        snapshot = [ctx._pub for ctx in contexts]
        dirty = False
        awake = 0
        halted_this_round = 0
        for v in active:
            ctx = contexts[v]
            wake = ctx._wake_round
            if wake is not None and wake > rounds:
                continue
            ctx._wake_round = None
            awake += 1
            inbox = [snapshot[u] for u in graph.neighbors(v)]
            algorithm.step(ctx, inbox)
            if ctx.halted:
                dirty = True
                halted_this_round += 1
        for v in active:
            contexts[v]._commit()
        if trace:
            traces.append(
                RoundTrace(
                    active=len(active),
                    awake=awake,
                    halted=halted_this_round,
                )
            )
        if dirty:
            active = [v for v in active if not contexts[v].halted]
        rounds += 1
        messages += messages_per_round

    failures = {
        v: ctx.failure for v, ctx in enumerate(contexts) if ctx.failure
    }
    outputs = [ctx.output for ctx in contexts]
    return RunResult(
        outputs=outputs,
        rounds=rounds,
        messages=messages,
        failures=failures,
        trace=traces,
    )

"""Radius-t views: the information a vertex can gather in t rounds.

In the LOCAL model, a t-round algorithm is exactly a function of the
radius-t ball around the vertex (topology + port numbering + any vertex
labels inside the ball).  This module extracts such balls in a
*canonical* form so that two balls compare equal iff they are isomorphic
as rooted port-numbered labeled graphs — the formal statement behind the
indistinguishability principle used in Theorem 5 and Linial's lower
bound, and the machinery behind experiment E12.

Canonicalization: traverse the ball by BFS from the center, visiting each
vertex's neighbors in port order.  For port-numbered graphs this
traversal order is determined by the ball's structure alone, so the
re-indexed adjacency-with-ports tuple is a canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph


@dataclass(frozen=True)
class View:
    """A canonical rooted radius-t view.

    Attributes
    ----------
    radius:
        The collection radius t.
    adjacency:
        ``adjacency[i][p]`` is the canonical index of the vertex on port
        ``p`` of canonical vertex ``i``, or ``-1`` when that port leads
        outside the ball (beyond the horizon).  Canonical vertex 0 is
        the center.
    labels:
        ``labels[i]`` is the label of canonical vertex ``i`` (``None``
        where no labeling was supplied).
    """

    radius: int
    adjacency: Tuple[Tuple[int, ...], ...]
    labels: Tuple[Any, ...]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return (
            self.radius == other.radius
            and self.adjacency == other.adjacency
            and self.labels == other.labels
        )

    def __hash__(self) -> int:
        return hash((self.radius, self.adjacency, self.labels))

    @property
    def num_vertices(self) -> int:
        return len(self.adjacency)

    def is_tree_view(self) -> bool:
        """Whether the ball contains no cycle (every non-tree port pair
        is absent)."""
        # Count edges inside the ball: each internal edge appears twice.
        internal = sum(
            1
            for row in self.adjacency
            for target in row
            if target >= 0
        )
        return internal // 2 == self.num_vertices - 1


def collect_view(
    graph: Graph,
    center: int,
    radius: int,
    labels: Optional[Sequence[Any]] = None,
) -> View:
    """Extract the canonical radius-``radius`` view around ``center``.

    ``labels[v]`` (if given) travels with vertex ``v`` — use it for IDs,
    input colors, or anything else a t-round algorithm could see.
    """
    dist: Dict[int, int] = {center: 0}
    order: List[int] = [center]
    index: Dict[int, int] = {center: 0}
    head = 0
    while head < len(order):
        v = order[head]
        head += 1
        if dist[v] == radius:
            continue
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                index[u] = len(order)
                order.append(u)
    adjacency = []
    for v in order:
        if dist[v] < radius:
            row = tuple(index.get(u, -1) for u in graph.neighbors(v))
        else:
            # Horizon vertices: only their edges back toward the ball's
            # interior are learnable in ``radius`` rounds.  Edges among
            # two horizon vertices are invisible (their endpoints' round-1
            # knowledge cannot reach the center in time), so they are
            # masked as -1 exactly like edges leaving the ball.
            row = tuple(
                index[u] if dist.get(u, radius + 1) < radius else -1
                for u in graph.neighbors(v)
            )
        adjacency.append(row)
    if labels is None:
        view_labels: Tuple[Any, ...] = tuple(None for _ in order)
    else:
        view_labels = tuple(labels[v] for v in order)
    return View(radius=radius, adjacency=tuple(adjacency), labels=view_labels)


def tree_canonical_form(view: View) -> tuple:
    """Port-oblivious canonical form of an acyclic view (AHU encoding).

    Two tree views get the same form iff they are isomorphic as rooted
    *unordered* labeled trees — the right equivalence when the port
    numbering is adversarial/arbitrary rather than part of the input.
    Horizon stubs (masked ports) are encoded as anonymous leaves, since
    a t-round algorithm knows an edge leaves the ball but nothing more.

    Raises
    ------
    ValueError
        If the view contains a visible cycle.
    """
    if not view.is_tree_view():
        raise ValueError("view contains a cycle; no tree canonical form")

    def encode(vertex: int, parent: int) -> tuple:
        children = []
        stubs = 0
        for target in view.adjacency[vertex]:
            if target == -1:
                stubs += 1
            elif target != parent:
                children.append(encode(target, vertex))
        children.sort()
        return (view.labels[vertex], stubs, tuple(children))

    return encode(0, -1)


def views_equivalent_as_trees(view_a: View, view_b: View) -> bool:
    """Whether two acyclic views are indistinguishable up to port
    renumbering (equal AHU canonical forms and equal radii)."""
    if view_a.radius != view_b.radius:
        return False
    return tree_canonical_form(view_a) == tree_canonical_form(view_b)


def views_identical(
    graph_a: Graph,
    center_a: int,
    graph_b: Graph,
    center_b: int,
    radius: int,
    labels_a: Optional[Sequence[Any]] = None,
    labels_b: Optional[Sequence[Any]] = None,
) -> bool:
    """Whether two centered balls are indistinguishable to any t-round
    LOCAL algorithm (same canonical view)."""
    va = collect_view(graph_a, center_a, radius, labels_a)
    vb = collect_view(graph_b, center_b, radius, labels_b)
    return va == vb

"""Per-node execution context with model enforcement.

The engine hands each vertex a :class:`NodeContext`.  The context is the
*only* window an algorithm has onto the simulation, and it enforces the
model split of Section I:

- **DetLOCAL** contexts expose :attr:`NodeContext.id` (a unique
  Θ(log n)-bit identifier) and raise on :attr:`NodeContext.random`.
- **RandLOCAL** contexts expose :attr:`NodeContext.random` (a private
  stream of independent random bits) and raise on :attr:`NodeContext.id`
  — vertices are undifferentiated.

Both models expose the degree, the port count, per-port input labels
(e.g. an input edge coloring) and the global parameters (n, Δ, and any
experiment-specific extras) that Section I assumes are common knowledge.
"""

from __future__ import annotations

import enum
import random
from typing import Any, Dict, Mapping, Optional

from .errors import ModelViolationError


class Model(enum.Enum):
    """Which of the two LOCAL models a run executes under."""

    DET = "DetLOCAL"
    RAND = "RandLOCAL"


class NodeContext:
    """State and capabilities of one vertex during a run.

    Algorithms interact with the context through:

    - :meth:`publish` — set the value neighbors will see next round;
    - :attr:`state` — a private scratch dictionary;
    - :meth:`halt` — fix the output and stop participating;
    - :meth:`fail` — declare a (randomized) failure;
    - read-only attributes ``degree``, ``n``, ``max_degree``,
      ``globals``, ``input``, and model-gated ``id`` / ``random``.
    """

    __slots__ = (
        "_index",
        "degree",
        "n",
        "max_degree",
        "globals",
        "input",
        "state",
        "model",
        "_id",
        "_rng",
        "_pub",
        "_next_pub",
        "_pub_dirty",
        "_clock",
        "_wake_round",
        "halted",
        "output",
        "failure",
        "failure_round",
    )

    def __init__(
        self,
        index: int,
        degree: int,
        n: int,
        max_degree: int,
        model: Model,
        node_id: Optional[int],
        rng: Optional[random.Random],
        node_input: Optional[Dict[str, Any]] = None,
        global_params: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self._index = index
        self.degree = degree
        self.n = n
        self.max_degree = max_degree
        self.model = model
        self._id = node_id
        self._rng = rng
        self.input: Dict[str, Any] = node_input or {}
        # Common knowledge by definition (Section I): every vertex sees
        # the same read-only mapping; the engine shares one instance
        # across all n contexts.
        self.globals: Mapping[str, Any] = (
            global_params if global_params is not None else {}
        )
        self.state: Dict[str, Any] = {}
        self._pub: Any = None
        self._next_pub: Any = None
        self._pub_dirty = False
        self._clock: Any = None
        self._wake_round: Optional[int] = None
        self.halted = False
        self.output: Any = None
        self.failure: Optional[str] = None
        self.failure_round: Optional[int] = None

    # ------------------------------------------------------------------
    # Model-gated capabilities
    # ------------------------------------------------------------------
    @property
    def id(self) -> int:
        """This vertex's unique identifier (DetLOCAL only)."""
        if self.model is not Model.DET:
            raise ModelViolationError(
                "ctx.id accessed under RandLOCAL: vertices are "
                "undifferentiated; generate a random ID instead"
            )
        assert self._id is not None
        return self._id

    @property
    def random(self) -> random.Random:
        """This vertex's private random stream (RandLOCAL only)."""
        if self.model is not Model.RAND:
            raise ModelViolationError(
                "ctx.random accessed under DetLOCAL: deterministic "
                "algorithms get no random bits"
            )
        assert self._rng is not None
        return self._rng

    @property
    def ports(self) -> range:
        """Port numbers ``0 .. degree-1``."""
        return range(self.degree)

    # ------------------------------------------------------------------
    # Communication and lifecycle
    # ------------------------------------------------------------------
    def publish(self, value: Any) -> None:
        """Set the value every neighbor will receive next round.

        Publishing is idempotent within a round; the last call wins.
        A vertex that does not publish keeps its previous value visible
        (links are reliable; silence just repeats the old state).
        """
        self._next_pub = value
        self._pub_dirty = True

    @property
    def published(self) -> Any:
        """The value currently visible to neighbors."""
        return self._pub

    @property
    def pending_publish(self) -> Any:
        """The value :meth:`publish` staged this round, or the visible
        value if nothing was staged.

        Read-only spectator view for observers (see
        ``docs/observability.md``): during a round, ``published`` is
        still last round's value (double buffering); this is what will
        become visible at the round boundary.  Observers must treat the
        context as read-only — mutating it from a callback is flagged
        by static-analysis rule LM008.
        """
        if self._pub_dirty:
            return self._next_pub
        return self._pub

    @property
    def now(self) -> int:
        """Index of the round currently executing (0-based; the first
        :meth:`~repro.core.algorithm.SyncAlgorithm.step` call is round 0).
        Reads -1 inside ``setup``.

        Contract: the round index is common knowledge (the model is
        synchronous), intended for *local scheduling* — phase
        arithmetic, :meth:`sleep_until`, turn-taking.  Publishing a
        value derived from it is flagged by the static analyzer (rule
        LM006) and must be explicitly acknowledged with
        ``# repro: ignore[LM006]`` where the round number is a
        documented part of the algorithm's output (e.g. an H-partition
        layer number equals the peel round by definition)."""
        if self._clock is None:
            return -1
        return self._clock.now

    def sleep_until(self, wake_round: int) -> None:
        """Skip rounds before ``wake_round`` (0-based engine rounds).

        A sleeping vertex performs no computation and sends nothing new
        (its published value stays visible, like a halted vertex's).
        This is purely a simulation fast path — an idle-waiting vertex in
        the real model behaves identically; round accounting is
        unchanged.
        """
        self._wake_round = wake_round

    def halt(self, output: Any = None) -> None:
        """Fix this vertex's output and stop executing steps.

        The last published value remains visible to neighbors forever
        (a halted processor keeps answering with its final state).
        """
        if output is not None:
            self.output = output
        self.halted = True

    def fail(self, reason: str) -> None:
        """Declare failure (RandLOCAL algorithms may fail; Section I).

        The vertex halts with no output; the run result records the
        reason and the round it was declared in (``failure_round``), so
        errors built from it carry full node/round attribution.
        Deterministic algorithms should never call this.
        """
        self.failure = reason
        self.failure_round = self.now
        self.halted = True

    def _commit(self) -> None:
        """Engine hook: make this round's published value visible."""
        if self._pub_dirty:
            self._pub = self._next_pub
            self._pub_dirty = False

"""In-run checkpointing: round-boundary engine snapshots with exact resume.

PR 4 made sweeps resilient at *cell* granularity — a killed worker
throws away its whole run.  This module adds the third, finest recovery
granularity: a run under ``run_local(checkpoint=CheckpointPolicy(...))``
(or inside an ambient :func:`checkpointing` scope) snapshots its
complete resumable state at round boundaries, and a resumed run
reproduces the uninterrupted run's :class:`~repro.core.engine.RunResult`
and JSONL trace **byte-identically** — same engines, same injected
faults, same observer streams.  The ``checkpoint_resume`` relation in
:mod:`repro.verify` pins that contract across every registered backend.

What a snapshot holds is backend-shaped (see the
``Backend.capture_state`` / ``restore_state`` capability in
:mod:`repro.core.backend`): the scalar engines record per-node ``state``
/ published values / wake rounds / halt and failure flags plus each
node's ``random.Random.getstate()``; the vectorized backend records the
kernel's columnar arrays and the :class:`~repro.backends.mt19937.VectorMT`
limb counts and draw cursors.  Both formats also carry the
:class:`~repro.faults.runtime.FaultRuntime`'s mutable duplicate buffer
and one resumable position per attached observer.

File format (one file per run "slot", atomically replaced on every
save): a single JSON header line — schema, version, slot, round,
fingerprint of the run's identity, and the SHA-256 + length of the
payload — followed by the pickled payload bytes.  Truncation or
corruption surfaces as a loud :class:`CheckpointError`; a fingerprint
that does not match the current run (different seed, size, or
algorithm) makes the run start fresh instead of resuming into the wrong
state.

Multi-phase drivers make several ``run_local`` calls; under an ambient
:func:`checkpointing` scope each call takes the next **slot**.
Completed slots persist a ``.done`` snapshot (the pickled result plus
observer end positions), so a resume replays finished phases without
re-running their engines and restores observers to exactly where the
interrupted process left them.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .atomicio import atomic_write_bytes
from .errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backend import Backend

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointScope",
    "CheckpointSession",
    "checkpointing",
    "current_checkpoint_scope",
    "load_checkpoint",
    "save_checkpoint",
]

CHECKPOINT_SCHEMA = "repro.core.checkpoint"
CHECKPOINT_VERSION = 1

_PathLike = Union[str, "os.PathLike[str]"]


class CheckpointError(ReproError):
    """A checkpoint could not be taken, read, or applied.

    Raised loudly for corruption (bad hash, truncated payload, foreign
    schema), for engine state that cannot be pickled (see staticcheck
    rule LM012), and for resume attempts whose backend or observer set
    no longer matches the snapshot.  A merely *mismatched fingerprint*
    (same directory, different run identity) is not an error — the run
    starts fresh and overwrites the stale files.
    """


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where to snapshot a run.

    ``path`` is a directory; each ``run_local`` call (slot) keeps one
    in-flight file ``slot-NNNN.ckpt`` and, once finished, one
    ``slot-NNNN.done`` snapshot there.  At least one cadence must be
    set: ``every_rounds`` checkpoints deterministically on round
    boundaries, ``every_seconds`` on wall clock (the *content* is still
    a round-boundary snapshot, so resume stays exact either way).

    ``resume`` makes runs under this policy restore from existing
    snapshots instead of overwriting them.  ``heartbeat`` is a plane-2
    hook the supervisor uses: called with ``{"slot": s, "rounds": r}``
    at most every ``heartbeat_seconds``, never on the no-checkpoint hot
    path.
    """

    path: str
    every_rounds: Optional[int] = None
    every_seconds: Optional[float] = None
    resume: bool = False
    heartbeat: Optional[Callable[[Dict[str, Any]], None]] = None
    heartbeat_seconds: float = 0.5

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("CheckpointPolicy.path must be a directory path")
        if self.every_rounds is None and self.every_seconds is None:
            raise ValueError(
                "CheckpointPolicy needs every_rounds and/or every_seconds"
            )
        if self.every_rounds is not None and self.every_rounds < 1:
            raise ValueError(
                f"every_rounds must be >= 1, got {self.every_rounds}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError(
                f"every_seconds must be positive, got {self.every_seconds}"
            )


def save_checkpoint(
    path: _PathLike, header: Dict[str, Any], payload: bytes
) -> None:
    """Atomically write one checkpoint file (header line + payload).

    ``header`` is completed with the schema marker and the payload's
    SHA-256 and length, serialized canonically (sorted keys), and
    followed by the raw payload bytes.  The file is replaced atomically
    so a reader sees the previous snapshot or this one, never a tear.
    """
    record = dict(header)
    record["schema"] = CHECKPOINT_SCHEMA
    record["version"] = CHECKPOINT_VERSION
    record["payload_sha256"] = hashlib.sha256(payload).hexdigest()
    record["payload_len"] = len(payload)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    atomic_write_bytes(path, line.encode("utf-8") + b"\n" + payload)


def load_checkpoint(path: _PathLike) -> Tuple[Dict[str, Any], Any]:
    """Read and verify one checkpoint file; returns (header, payload).

    Raises :class:`CheckpointError` on any integrity failure: missing
    header, foreign schema, newer version, truncated payload, or a
    SHA-256 mismatch.  Corruption never resumes silently.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {os.fspath(path)!r}: {exc}"
        ) from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} is truncated: no header line"
        )
    try:
        header = json.loads(raw[:newline])
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} has an unreadable header: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} is not a "
            f"{CHECKPOINT_SCHEMA} file"
        )
    version = header.get("version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} has version {version!r}; "
            f"this build understands <= {CHECKPOINT_VERSION}"
        )
    payload = raw[newline + 1 :]
    expected_len = header.get("payload_len")
    if len(payload) != expected_len:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} is truncated: payload is "
            f"{len(payload)} bytes, header promises {expected_len!r}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} failed its integrity hash "
            f"(stored {header.get('payload_sha256')!r}, computed {digest!r})"
        )
    try:
        value = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} payload does not unpickle: "
            f"{exc}"
        ) from exc
    return header, value


@dataclass
class CheckpointScope:
    """Per-process bookkeeping shared by every slot of one scope.

    ``restored_any`` flips once any slot restored observer state — a
    later slot with no snapshot then runs fresh *without* resetting the
    observers (they are positioned at the previous slot's end).
    ``fresh_tail`` flips once any slot ran fresh: every later slot must
    then ignore (and overwrite) whatever stale files it finds, because
    snapshots past a fresh slot describe a run that no longer exists.
    """

    policy: CheckpointPolicy
    resume: bool
    next_slot: int = 0
    restored_any: bool = False
    fresh_tail: bool = False
    events: List[Dict[str, Any]] = field(default_factory=list)

    def next_session(self) -> "CheckpointSession":
        slot = self.next_slot
        self.next_slot += 1
        return CheckpointSession(self, slot)


_SCOPES: List[CheckpointScope] = []


def current_checkpoint_scope() -> Optional[CheckpointScope]:
    """The innermost ambient :func:`checkpointing` scope, if any."""
    return _SCOPES[-1] if _SCOPES else None


@contextmanager
def checkpointing(
    policy: Union[CheckpointPolicy, _PathLike],
    *,
    every_rounds: Optional[int] = None,
    every_seconds: Optional[float] = None,
    resume: Optional[bool] = None,
) -> Iterator[CheckpointScope]:
    """Ambient scope: every ``run_local`` call inside checkpoints.

    ``policy`` is a :class:`CheckpointPolicy` or a bare directory path
    (then ``every_rounds`` defaults to 256).  ``resume`` overrides the
    policy's flag.  Yields the scope, whose ``events`` list records
    what each slot did (``restored``/``replayed``/``fresh``) for audit.
    """
    if not isinstance(policy, CheckpointPolicy):
        policy = CheckpointPolicy(
            path=os.fspath(policy),
            every_rounds=(
                every_rounds
                if every_rounds is not None or every_seconds is not None
                else 256
            ),
            every_seconds=every_seconds,
        )
    os.makedirs(policy.path, exist_ok=True)
    scope = CheckpointScope(
        policy=policy,
        resume=policy.resume if resume is None else resume,
    )
    _SCOPES.append(scope)
    try:
        yield scope
    finally:
        _SCOPES.pop()


def standalone_scope(policy: CheckpointPolicy) -> CheckpointScope:
    """A one-shot scope for ``run_local(checkpoint=policy)`` without an
    ambient :func:`checkpointing` block (single-slot; a driver that
    calls ``run_local`` several times needs the ambient form so each
    call gets its own slot)."""
    os.makedirs(policy.path, exist_ok=True)
    return CheckpointScope(policy=policy, resume=policy.resume)


class CheckpointSession:
    """One slot's checkpoint lifecycle, driven by ``run_local``.

    The engine only ever calls two methods on the hot path —
    :meth:`due` (cheap: an int compare unless a wall-clock cadence or
    heartbeat is configured) and :meth:`save` — both strictly at round
    boundaries.  Everything else (binding, restore, done-memoization)
    happens once per run in ``run_local``.
    """

    def __init__(self, scope: CheckpointScope, slot: int) -> None:
        self.scope = scope
        self.policy = scope.policy
        self.slot = slot
        self._backend: Optional["Backend"] = None
        self._observers: Tuple[Any, ...] = ()
        self._fingerprint: Dict[str, Any] = {}
        self._engine_payload: Optional[Dict[str, Any]] = None
        self._done_result: Any = None
        self._have_done = False
        self._last_saved = 0
        self._last_time = time.monotonic()
        self._hb_tick = 0
        self._hb_last = self._last_time

    # -- paths ---------------------------------------------------------
    @property
    def ckpt_path(self) -> str:
        return os.path.join(self.policy.path, f"slot-{self.slot:04d}.ckpt")

    @property
    def done_path(self) -> str:
        return os.path.join(self.policy.path, f"slot-{self.slot:04d}.done")

    # -- run_local lifecycle -------------------------------------------
    def bind(
        self,
        backend: "Backend",
        observers: Sequence[Any],
        fingerprint: Dict[str, Any],
    ) -> None:
        """Attach the backend capability and the run's observers.

        Fails fast — before any engine work — when the backend lacks
        the ``capture_state``/``restore_state`` capability or an
        attached observer cannot participate in checkpointing.
        """
        if backend.capture_state is None or backend.restore_state is None:
            raise CheckpointError(
                f"backend {backend.name!r} does not support checkpointing "
                "(no capture_state/restore_state capability) — run without "
                "checkpoint= or pick a capable backend"
            )
        for obs in observers:
            if not getattr(obs, "checkpoint_capable", False):
                raise CheckpointError(
                    f"observer {type(obs).__name__} is not checkpoint-"
                    "capable: it defines no resumable position, so a "
                    "resumed run could not reproduce its stream.  "
                    "Implement checkpoint_state()/restore_checkpoint() "
                    "and set checkpoint_capable = True, or detach it."
                )
        self._backend = backend
        self._observers = tuple(observers)
        self._fingerprint = fingerprint

    def begin(self) -> bool:
        """Restore whatever this slot has on disk.  Returns True when
        the slot is already complete (use :meth:`done_result` instead
        of running the engine)."""
        scope = self.scope
        if not scope.resume or scope.fresh_tail:
            self._begin_fresh("fresh")
            return False
        if os.path.exists(self.done_path):
            header, payload = load_checkpoint(self.done_path)
            if header.get("fingerprint") != self._fingerprint:
                self._begin_fresh("stale-done")
                return False
            self._restore_observers(payload["observers"])
            self._done_result = payload["result"]
            self._have_done = True
            scope.restored_any = True
            scope.events.append({"slot": self.slot, "action": "replayed"})
            return True
        if os.path.exists(self.ckpt_path):
            header, payload = load_checkpoint(self.ckpt_path)
            if header.get("fingerprint") != self._fingerprint:
                self._begin_fresh("stale-ckpt")
                return False
            self._restore_observers(payload["observers"])
            self._engine_payload = payload["engine"]
            self._last_saved = int(header.get("rounds", 0))
            scope.restored_any = True
            scope.events.append(
                {
                    "slot": self.slot,
                    "action": "restored",
                    "rounds": self._last_saved,
                }
            )
            return False
        self._begin_fresh("no-snapshot")
        return False

    def _begin_fresh(self, reason: str) -> None:
        scope = self.scope
        if scope.resume and not scope.restored_any and not scope.fresh_tail:
            # First slot of the scope and nothing restored: observers
            # may carry partial output from the killed process — rewind
            # them to their initial state so the fresh run reproduces
            # bytes from the top.  Later fresh slots must NOT rewind:
            # the observers are positioned at the previous slot's end
            # and a reset would discard that slot's freshly written
            # output (multi-phase drivers re-run every slot after the
            # first fresh one).
            for obs in self._observers:
                obs.restore_checkpoint(None)
        scope.fresh_tail = True
        for stale in (self.ckpt_path, self.done_path):
            try:
                os.unlink(stale)
            except OSError:
                pass
        scope.events.append(
            {"slot": self.slot, "action": "fresh", "reason": reason}
        )

    def done_result(self) -> Any:
        if not self._have_done:
            raise CheckpointError(
                f"slot {self.slot} has no completed snapshot to replay"
            )
        return self._done_result

    def _restore_observers(self, states: Sequence[Any]) -> None:
        if len(states) != len(self._observers):
            raise CheckpointError(
                f"slot {self.slot} snapshot recorded "
                f"{len(states)} observer position(s) but "
                f"{len(self._observers)} observer(s) are attached — "
                "resume with the same observers, in the same order, as "
                "the interrupted run"
            )
        for obs, state in zip(self._observers, states):
            obs.restore_checkpoint(state)

    # -- engine-facing surface -----------------------------------------
    def engine_payload(self, expected_format: str) -> Optional[Dict[str, Any]]:
        """The restored engine snapshot for this slot, or None.

        The engine names its own ``expected_format`` (``"scalar"`` or
        ``"vector"``); a mismatch means the backend decision changed
        between the killed run and the resume (different env, different
        fallback) and resuming would be wrong — raised loudly.
        """
        payload = self._engine_payload
        if payload is None:
            return None
        self._engine_payload = None
        if payload.get("format") != expected_format:
            raise CheckpointError(
                f"slot {self.slot} snapshot holds "
                f"{payload.get('format')!r} engine state but the run "
                f"resumed on a {expected_format!r} engine — resume under "
                "the same backend configuration as the interrupted run"
            )
        return payload

    def restore_engine(self, handle: Any, payload: Dict[str, Any]) -> None:
        assert self._backend is not None and self._backend.restore_state
        self._backend.restore_state(handle, payload)

    def due(self, rounds: int) -> bool:
        """Is a snapshot due at the round-``rounds`` boundary?"""
        if self.policy.heartbeat is not None:
            self._maybe_heartbeat(rounds)
        if rounds < 1 or rounds == self._last_saved:
            return False
        every_rounds = self.policy.every_rounds
        if (
            every_rounds is not None
            and rounds - self._last_saved >= every_rounds
        ):
            return True
        every_seconds = self.policy.every_seconds
        if every_seconds is not None:
            return time.monotonic() - self._last_time >= every_seconds
        return False

    def save(self, handle: Any, rounds: int) -> None:
        """Snapshot the engine + observers at the ``rounds`` boundary."""
        assert self._backend is not None and self._backend.capture_state
        engine = self._backend.capture_state(handle)
        payload = {
            "engine": engine,
            "observers": [
                obs.checkpoint_state() for obs in self._observers
            ],
        }
        blob = self._pickle(payload, f"round {rounds}")
        save_checkpoint(
            self.ckpt_path,
            {
                "kind": "inflight",
                "slot": self.slot,
                "rounds": rounds,
                "format": engine.get("format"),
                "fingerprint": self._fingerprint,
            },
            blob,
        )
        self._last_saved = rounds
        self._last_time = time.monotonic()
        hb = self.policy.heartbeat
        if hb is not None:
            hb({"slot": self.slot, "rounds": rounds, "saved": True})

    def record_done(self, result: Any) -> None:
        """Persist the slot's completed result + observer end state."""
        payload = {
            "result": result,
            "observers": [
                obs.checkpoint_state() for obs in self._observers
            ],
        }
        blob = self._pickle(payload, "run result")
        save_checkpoint(
            self.done_path,
            {"kind": "done", "slot": self.slot, "fingerprint": self._fingerprint},
            blob,
        )

    def _pickle(self, payload: Any, what: str) -> bytes:
        try:
            return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"cannot checkpoint {what}: state is not picklable "
                f"({exc}).  Node ctx.state must hold plain data — "
                "open files, sockets, generators, locks, and lambdas "
                "cannot be snapshotted (staticcheck rule LM012 flags "
                "these)."
            ) from exc

    def _maybe_heartbeat(self, rounds: int) -> None:
        self._hb_tick += 1
        if self._hb_tick & 0x3F:
            return
        now = time.monotonic()
        if now - self._hb_last >= self.policy.heartbeat_seconds:
            self._hb_last = now
            hb = self.policy.heartbeat
            if hb is not None:
                hb({"slot": self.slot, "rounds": rounds, "saved": False})

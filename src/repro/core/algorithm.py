"""Algorithm interface for the synchronous LOCAL engine.

An algorithm is a *node program*: every vertex runs the same code
(Section I).  The engine drives it in synchronized rounds:

1. :meth:`SyncAlgorithm.setup` runs once at every vertex (round 0, no
   communication has happened yet — the vertex knows only its own
   degree, inputs, globals, and its ID / random stream).
2. Each round, :meth:`SyncAlgorithm.step` runs at every non-halted
   vertex with ``inbox[p]`` = the value the neighbor on port ``p``
   published at the end of the previous round.

Publishing a value is the LOCAL-model "send an unbounded message to all
neighbors"; per-port addressed messages are built on top with
:func:`addressed` / :func:`unpack_addressed` (publish a dict keyed by the
*receiver's* port, which the sender knows via the graph's reverse ports —
the engine injects them into ``ctx.input['reverse_ports']``).

This shared-state formulation is round-for-round equivalent to explicit
message passing and keeps node programs short and auditable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from .context import NodeContext

Inbox = Sequence[Any]


class SyncAlgorithm:
    """Base class for node programs.  Subclasses override
    :meth:`setup` and :meth:`step`.

    Instances must be stateless with respect to individual vertices: all
    per-vertex state lives in ``ctx.state``.  (One instance is shared by
    all vertices, mirroring "all vertices run the same algorithm".)
    """

    #: Human-readable name used in traces and experiment output.
    name = "sync-algorithm"

    def setup(self, ctx: NodeContext) -> None:
        """Initialize per-vertex state; may publish and may halt."""

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Execute one round.  ``inbox[p]`` is the neighbor on port
        ``p``'s published value from the previous round."""
        raise NotImplementedError


def addressed(per_port: Dict[int, Any]) -> Dict[int, Any]:
    """Package per-port messages for publication.

    ``per_port`` maps *this sender's* port to a message; the dict is
    published as-is.  Keying by the sender's own port is the only
    unambiguous scheme under broadcast: every receiver knows the
    sender's port for their shared edge (its reverse port) and looks
    that up with :func:`unpack_addressed`.  (Keying by receiver ports
    would be ambiguous — two different neighbors of the sender can have
    numerically equal ports toward it.)
    """
    return dict(per_port)


def unpack_addressed(
    ctx: NodeContext, inbox: Inbox, my_port: int
) -> Optional[Any]:
    """Extract the message the neighbor on ``my_port`` addressed to us:
    look up the sender's port for our shared edge (our reverse port)
    in its published dict.  ``None`` if nothing was addressed to us."""
    packet = inbox[my_port]
    if not isinstance(packet, dict):
        return None
    sender_port = ctx.input["reverse_ports"][my_port]
    return packet.get(sender_port)

"""Exception hierarchy for the LOCAL simulation engine.

Every error can carry *structured context* — the failing vertex, the
round it failed in, and the :class:`~repro.core.engine.RunMeta` of the
run — so harnesses and the CLI can report "vertex 17 failed in round 4
of 'color-bidding' on n=10000" instead of a bare message.  The context
fields are keyword-only and optional; errors raised without them behave
exactly as before.

The **fault taxonomy** (:class:`FaultEvent` and its subclasses) models
*injected* failures from :mod:`repro.faults`: the RandLOCAL model is
defined by tolerating a local failure probability of 1/n (Section I),
and the fault layer lets experiments measure that claim instead of
merely avoiding it.  Fault events are structured objects first and
exceptions second — drop/duplicate/corrupt/crash events are *recorded*
(observers see them as trace events) while :class:`BudgetExceededError`
is *raised* when a run exhausts its injected round budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> errors)
    from .engine import RunMeta


class ReproError(Exception):
    """Base class for all errors raised by this library.

    Parameters
    ----------
    message:
        Human-readable description (the usual ``Exception`` payload).
    node:
        Engine vertex index the error is attributed to, when known.
    round:
        0-based round index (``-1`` = setup), when known.
    run_meta:
        The :class:`~repro.core.engine.RunMeta` of the run that raised,
        when known — gives CLI error output the algorithm name, model,
        and instance size for free.
    """

    def __init__(
        self,
        message: str = "",
        *,
        node: Optional[int] = None,
        round: Optional[int] = None,
        run_meta: Optional["RunMeta"] = None,
    ) -> None:
        super().__init__(message)
        self.node = node
        self.round = round
        self.run_meta = run_meta

    def context(self) -> Dict[str, Any]:
        """The structured context fields that are actually set."""
        ctx: Dict[str, Any] = {}
        if self.node is not None:
            ctx["node"] = self.node
        if self.round is not None:
            ctx["round"] = self.round
        meta = self.run_meta
        if meta is not None:
            ctx["algorithm"] = meta.algorithm
            ctx["model"] = meta.model.name
            ctx["n"] = meta.n
            ctx["max_degree"] = meta.max_degree
            if meta.seed is not None:
                ctx["seed"] = meta.seed
        return ctx

    def context_lines(self) -> List[str]:
        """``key: value`` lines for CLI error rendering (may be empty)."""
        return [f"{key}: {value}" for key, value in self.context().items()]


class SimulationError(ReproError):
    """The engine could not run the algorithm (bad configuration,
    round-limit exceeded, malformed messages)."""


class ModelViolationError(SimulationError):
    """An algorithm accessed state its model forbids — e.g. reading
    ``ctx.id`` in RandLOCAL (vertices are undifferentiated) or
    ``ctx.random`` in DetLOCAL (no random bits)."""


class DuplicateIDError(SimulationError):
    """A DetLOCAL run was configured with non-unique vertex IDs."""


class AlgorithmFailure(ReproError):
    """A randomized algorithm declared failure.

    RandLOCAL algorithms run for a specified number of rounds and may
    fail with some probability (Section I).  Algorithms in this library
    *detect and declare* failure rather than silently emitting an invalid
    labeling; experiment harnesses catch this and count the failure.
    Raisers should attach ``node=``/``round=`` where the failing vertex
    is known (``RunResult.failures`` + ``NodeContext.failure_round``
    carry both).
    """


class VerificationError(ReproError):
    """An output labeling failed its LCL verifier."""


class TelemetryError(ReproError):
    """The observability layer was misconfigured — e.g. a per-cell
    metric summary produced under ``run_sweep(workers=N)`` is not
    picklable and therefore cannot be merged back from a forked
    worker deterministically."""


# ---------------------------------------------------------------------------
# Injected-fault taxonomy (repro.faults)
# ---------------------------------------------------------------------------


class FaultEvent(ReproError):
    """Base class of every *injected* fault (see :mod:`repro.faults`).

    Instances double as structured event records: the engine hands them
    to observers via ``on_fault`` and the JSONL trace serializes the
    ``kind``/``port``/``detail`` fields (trace schema v2).  Node
    algorithm code must never swallow these (static-analysis rule
    LM009): faults surface to the engine and the harness, which is
    where the paper's failure-probability accounting happens.
    """

    #: Stable identifier of the fault class in traces and metrics.
    kind = "fault"

    def __init__(
        self,
        message: str = "",
        *,
        node: Optional[int] = None,
        round: Optional[int] = None,
        run_meta: Optional["RunMeta"] = None,
        port: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        super().__init__(message, node=node, round=round, run_meta=run_meta)
        self.port = port
        self.detail = detail

    def as_record(self) -> Dict[str, Any]:
        """JSON-safe event payload (stable keys, no addresses)."""
        record: Dict[str, Any] = {"kind": self.kind}
        if self.port is not None:
            record["port"] = self.port
        if self.detail is not None:
            record["detail"] = self.detail
        return record


class CrashStopFault(FaultEvent):
    """A vertex crash-stopped: from its crash round on it executes no
    steps and publishes nothing new (its last published value stays
    visible, exactly like a halted processor's)."""

    kind = "crash"


class MessageDropFault(FaultEvent):
    """A message on one edge-port was lost for one round; the receiver
    sees ``None`` in that inbox slot."""

    kind = "drop"


class MessageDuplicateFault(FaultEvent):
    """A stale duplicate won the race: the receiver got the *previous*
    delivery on that edge-port again instead of the current value."""

    kind = "duplicate"


class PayloadCorruptionFault(FaultEvent):
    """A delivered payload was rewritten by the plan's corruption hook
    before the receiving vertex stepped."""

    kind = "corrupt"


class BudgetExceededError(FaultEvent, SimulationError):
    """An injected round budget was exhausted before every vertex
    halted.

    Models the RandLOCAL convention that an algorithm "runs for a
    specified number of rounds" and fails otherwise (Section I).  Both
    a :class:`FaultEvent` (it is injected, observers see it) and a
    :class:`SimulationError` (callers treating engine limits uniformly
    catch it like the ``max_rounds`` guard).
    """

    kind = "budget"

"""Exception hierarchy for the LOCAL simulation engine."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The engine could not run the algorithm (bad configuration,
    round-limit exceeded, malformed messages)."""


class ModelViolationError(SimulationError):
    """An algorithm accessed state its model forbids — e.g. reading
    ``ctx.id`` in RandLOCAL (vertices are undifferentiated) or
    ``ctx.random`` in DetLOCAL (no random bits)."""


class DuplicateIDError(SimulationError):
    """A DetLOCAL run was configured with non-unique vertex IDs."""


class AlgorithmFailure(ReproError):
    """A randomized algorithm declared failure.

    RandLOCAL algorithms run for a specified number of rounds and may
    fail with some probability (Section I).  Algorithms in this library
    *detect and declare* failure rather than silently emitting an invalid
    labeling; experiment harnesses catch this and count the failure.
    """


class VerificationError(ReproError):
    """An output labeling failed its LCL verifier."""


class TelemetryError(ReproError):
    """The observability layer was misconfigured — e.g. a per-cell
    metric summary produced under ``run_sweep(workers=N)`` is not
    picklable and therefore cannot be merged back from a forked
    worker deterministically."""

"""Vertex identifier assignment for DetLOCAL runs.

In DetLOCAL every vertex holds a unique Θ(log n)-bit ID; the algorithm
designer does not control the assignment, so experiments should exercise
several schemes (natural, shuffled, adversarial, sparse-from-large-space).
IDs are inputs to the simulation, never the engine's internal indices.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .errors import DuplicateIDError
from ..graphs.graph import Graph


def check_unique_ids(ids: Sequence[int]) -> None:
    """Raise :class:`DuplicateIDError` unless all IDs are distinct and
    non-negative."""
    if any(i < 0 for i in ids):
        raise DuplicateIDError("IDs must be non-negative integers")
    if len(set(ids)) != len(ids):
        raise DuplicateIDError("IDs must be unique")


def id_bit_length(ids: Sequence[int]) -> int:
    """Number of bits needed to write the largest ID (at least 1)."""
    return max(1, max(ids).bit_length()) if ids else 1


def sequential_ids(n: int) -> List[int]:
    """IDs ``0 .. n-1`` in vertex order — the friendliest assignment."""
    return list(range(n))


def shuffled_ids(n: int, rng: random.Random) -> List[int]:
    """A uniformly random permutation of ``0 .. n-1``."""
    ids = list(range(n))
    rng.shuffle(ids)
    return ids


def sparse_random_ids(n: int, bits: int, rng: random.Random) -> List[int]:
    """``n`` distinct uniform IDs from ``{0, .., 2^bits - 1}``.

    This matches the model's Θ(log n)-bit ID space, where IDs are sparse
    in a range polynomially larger than n.  Raises
    :class:`DuplicateIDError` if the space is too small to be sampled
    distinctly with reasonable probability.
    """
    space = 1 << bits
    if space < 2 * n:
        raise DuplicateIDError(
            f"ID space 2^{bits} too small for {n} distinct sparse IDs"
        )
    chosen = set()
    while len(chosen) < n:
        chosen.add(rng.randrange(space))
    ids = list(chosen)
    rng.shuffle(ids)
    return ids


def bfs_order_ids(graph: Graph, root: int = 0) -> List[int]:
    """IDs in BFS order from ``root`` — an adversarial assignment for
    algorithms that exploit ID locality (neighbors get close IDs, so
    ID-based symmetry breaking degenerates)."""
    n = graph.num_vertices
    order: List[int] = []
    seen = [False] * n
    for start in [root] + list(range(n)):
        if seen[start]:
            continue
        seen[start] = True
        queue = [start]
        while queue:
            nxt: List[int] = []
            for v in queue:
                order.append(v)
                for u in graph.neighbors(v):
                    if not seen[u]:
                        seen[u] = True
                        nxt.append(u)
            queue = nxt
    ids = [0] * n
    for rank, v in enumerate(order):
        ids[v] = rank
    return ids


def reversed_ids(ids: Sequence[int]) -> List[int]:
    """Mirror an assignment inside its own range (order-reversing)."""
    top = max(ids) if ids else 0
    return [top - i for i in ids]

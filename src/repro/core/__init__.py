"""Core LOCAL simulation engine: models, contexts, rounds, views, IDs."""

from .algorithm import SyncAlgorithm, addressed, unpack_addressed
from .context import Model, NodeContext
from .engine import (
    DEFAULT_MAX_ROUNDS,
    RoundTrace,
    RunResult,
    build_contexts,
    flat_adjacency,
    make_node_rngs,
    run_local,
    run_local_reference,
    use_reference_engine,
)
from .errors import (
    AlgorithmFailure,
    DuplicateIDError,
    ModelViolationError,
    ReproError,
    SimulationError,
    VerificationError,
)
from .ids import (
    bfs_order_ids,
    check_unique_ids,
    id_bit_length,
    reversed_ids,
    sequential_ids,
    shuffled_ids,
    sparse_random_ids,
)
from .views import (
    View,
    collect_view,
    tree_canonical_form,
    views_equivalent_as_trees,
    views_identical,
)

__all__ = [
    "AlgorithmFailure",
    "DEFAULT_MAX_ROUNDS",
    "DuplicateIDError",
    "Model",
    "ModelViolationError",
    "NodeContext",
    "ReproError",
    "RoundTrace",
    "RunResult",
    "SimulationError",
    "SyncAlgorithm",
    "VerificationError",
    "View",
    "addressed",
    "bfs_order_ids",
    "build_contexts",
    "check_unique_ids",
    "collect_view",
    "flat_adjacency",
    "id_bit_length",
    "make_node_rngs",
    "reversed_ids",
    "run_local",
    "run_local_reference",
    "sequential_ids",
    "use_reference_engine",
    "shuffled_ids",
    "sparse_random_ids",
    "tree_canonical_form",
    "unpack_addressed",
    "views_equivalent_as_trees",
    "views_identical",
]

"""Pluggable engine backends for :func:`repro.core.engine.run_local`.

A *backend* is one implementation of the synchronous round loop.  The
repo ships three:

- ``"fast"`` — the production per-node engine (persistent visible list,
  dirty-commit, wake buckets; the default);
- ``"reference"`` — the kept-simple oracle loop the equivalence suite
  trusts;
- ``"vectorized"`` — numpy whole-round kernels over the CSR adjacency
  (requires the ``[perf]`` extra; see ``docs/performance.md``).

All backends share one contract: identical signature, identical
:class:`~repro.core.engine.RunResult` (outputs, rounds, messages,
failures, trace) and identical observer event streams for the same run.
The parameterized equivalence relation in :mod:`repro.verify.relations`
pins this down for every registered backend, so a new backend gets the
correctness suite for free the moment it registers here.

Selection precedence (first match wins):

1. an explicit ``run_local(backend="...")`` argument;
2. the innermost ambient :func:`use_backend` scope;
3. the ``REPRO_BACKEND`` environment variable;
4. the default, ``"fast"``.

This module is deliberately dependency-free (no numpy, no engine
import): backends register themselves, and optional backends register a
*loader* that is only invoked when the backend is actually selected —
importing :mod:`repro.core` never pulls in numpy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .errors import ReproError

#: Environment variable consulted when no explicit or ambient backend
#: is selected (step 3 of the precedence chain).
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The backend used when nothing else selects one.
DEFAULT_BACKEND = "fast"

#: A backend's runner: the exact ``run_local`` signature, returning a
#: ``RunResult``.  Typed loosely to keep this module engine-free.
Runner = Callable[..., Any]


@dataclass(frozen=True)
class Backend:
    """One registered round-engine implementation.

    ``loader`` resolves the actual runner lazily so optional backends
    (vectorized: numpy) cost nothing until selected; it must raise
    :class:`ReproError` with installation guidance when the backend's
    dependencies are missing.

    ``capture_state`` / ``restore_state`` form the optional
    *checkpoint capability* (see :mod:`repro.core.checkpoint`):
    ``capture_state(handle)`` serializes the engine's mutable
    round-boundary state to a picklable dict (carrying a ``"format"``
    key naming the state shape), and ``restore_state(handle, payload)``
    applies such a dict back onto a freshly built engine.  Backends
    without the capability leave both ``None``; selecting them under a
    checkpoint policy fails fast with a
    :class:`~repro.core.checkpoint.CheckpointError`.
    """

    name: str
    description: str
    loader: Callable[[], Runner]
    capture_state: Optional[Callable[[Any], Dict[str, Any]]] = None
    restore_state: Optional[Callable[[Any, Dict[str, Any]], None]] = None

    def load(self) -> Runner:
        """Resolve the runner (may raise :class:`ReproError`)."""
        return self.loader()

    def available(self) -> bool:
        """Whether the backend's dependencies are importable."""
        try:
            self.load()
        except ReproError:
            return False
        return True


#: Registration-ordered backend registry.
_REGISTRY: Dict[str, Backend] = {}

#: Ambient :func:`use_backend` scopes (innermost last).
_AMBIENT: List[str] = []


def register_backend(
    name: str,
    loader: Callable[[], Runner],
    *,
    description: str = "",
    capture_state: Optional[Callable[[Any], Dict[str, Any]]] = None,
    restore_state: Optional[Callable[[Any, Dict[str, Any]], None]] = None,
) -> None:
    """Register (or replace) a backend under ``name``.

    ``loader`` is called on first use, not at registration — register
    optional backends unconditionally and let the loader raise a
    :class:`ReproError` explaining what to install.  Pass both
    ``capture_state`` and ``restore_state`` to advertise the checkpoint
    capability (see :class:`Backend`).
    """
    _REGISTRY[name] = Backend(
        name=name,
        description=description,
        loader=loader,
        capture_state=capture_state,
        restore_state=restore_state,
    )


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_REGISTRY)


def available_backend_names() -> Tuple[str, ...]:
    """Registered backends whose dependencies are importable."""
    return tuple(
        name
        for name, backend in _REGISTRY.items()
        if backend.available()
    )


def get_backend(name: str) -> Backend:
    """Look up a backend; unknown names raise with the known set."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise ReproError(
            f"unknown engine backend {name!r}; registered backends: "
            f"{known}"
        ) from None


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Route every :func:`~repro.core.engine.run_local` call in scope
    through backend ``name``.

    Multi-phase drivers call ``run_local`` internally and most take no
    ``backend`` argument, so a backend for a whole driver execution is
    attached ambiently::

        with use_backend("vectorized"):
            pettie_su_tree_coloring(tree, seed=1)

    Scopes nest (innermost wins) and the previous selection is restored
    on exit even when the run raises.  Unknown names raise immediately;
    a known-but-unavailable backend (numpy missing) raises at the first
    ``run_local`` call, from its loader, with install guidance.
    """
    get_backend(name)  # fail fast on unknown names
    _AMBIENT.append(name)
    try:
        yield
    finally:
        _AMBIENT.pop()


def current_backend_name() -> str:
    """The backend ``run_local`` would use right now (precedence: ambient
    scope, then :data:`BACKEND_ENV_VAR`, then :data:`DEFAULT_BACKEND`).

    The returned name is not validated here — an unknown name from the
    environment variable surfaces as a :class:`ReproError` (listing the
    registered backends) at the next ``run_local`` call.
    """
    if _AMBIENT:
        return _AMBIENT[-1]
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        return env
    return DEFAULT_BACKEND


def resolve_runner(backend: Optional[str] = None) -> Runner:
    """The runner for ``backend`` (or the currently selected one)."""
    name = backend if backend is not None else current_backend_name()
    return get_backend(name).load()

"""Crash-safe writes for durable artifacts.

Every file this project treats as durable — sweep journals, lint and
bench baselines, metric exports, engine checkpoints — must survive the
writer dying at any instruction.  The contract here is the classic
POSIX one: build the complete new contents in a temporary file in the
*same directory*, ``fsync`` it, then ``os.replace`` it over the target.
A reader therefore sees either the old complete file or the new
complete file, never a torn hybrid; the temp file of a crashed writer
is garbage with a recognizable prefix, not a corrupt artifact.

Append-style artifacts (the sweep journal) cannot be replaced
wholesale; for those :func:`fsync_stream` pushes each appended record
through the OS cache so a torn write can only ever be the *trailing*
line — exactly the case the journal reader already tolerates.
"""

from __future__ import annotations

import os
import tempfile
from typing import IO, Any, Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_stream",
]

_PathLike = Union[str, "os.PathLike[str]"]


def _fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (the rename itself)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform or filesystem without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: _PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``.

    Writes to a same-directory temp file, fsyncs it, and renames it
    over the target with :func:`os.replace` (atomic on POSIX and
    Windows).  On any failure the temp file is removed and the
    original ``path`` is untouched.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def atomic_write_text(
    path: _PathLike, text: str, *, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text`` (see
    :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))


def fsync_stream(stream: IO[Any]) -> None:
    """Flush ``stream`` and fsync its file descriptor, if it has one.

    Streams without a real descriptor (``io.StringIO``, sockets that
    refuse ``fileno``) are just flushed — callers use one code path for
    files and in-memory test doubles alike.
    """
    stream.flush()
    try:
        fd = stream.fileno()
    except (AttributeError, OSError, ValueError):
        return
    os.fsync(fd)

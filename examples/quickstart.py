#!/usr/bin/env python3
"""Quickstart: Δ-color a tree with the paper's randomized algorithm.

Builds a random bounded-degree tree, runs the Theorem 10 two-phase
RandLOCAL algorithm (ColorBidding + shattering), verifies the output
with the Δ-coloring LCL checker, and compares the round count against
the deterministic Theorem 9 algorithm and the calculated lower bounds.

Run:  python examples/quickstart.py [n] [delta]
"""

import random
import sys

from repro.algorithms import (
    barenboim_elkin_coloring,
    pettie_su_tree_coloring,
)
from repro.analysis import render_kv
from repro.graphs.generators import random_tree_bounded_degree
from repro.lcl import KColoring
from repro.lowerbounds import corollary2_rounds, theorem5_rounds


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    delta = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    rng = random.Random(42)
    tree = random_tree_bounded_degree(n, delta, rng)
    delta = tree.max_degree
    checker = KColoring(delta)

    rand = pettie_su_tree_coloring(tree, seed=7)
    checker.check(tree, rand.labeling)  # raises if not a Δ-coloring

    det = barenboim_elkin_coloring(tree, delta)
    checker.check(tree, det.labeling)

    stats = rand.log.stats
    print(
        render_kv(
            f"Δ-coloring a random tree (n={n}, Δ={delta})",
            [
                ["RandLOCAL rounds (Theorem 10)", rand.rounds],
                ["  phase-1 bad vertices", stats.bad_vertices],
                ["  largest shattered component", stats.max_component],
                ["DetLOCAL rounds (Theorem 9)", det.rounds],
                [
                    "rand lower bound (Corollary 2)",
                    f"{corollary2_rounds(n, delta):.1f}",
                ],
                [
                    "det lower bound (Theorem 5)",
                    f"{theorem5_rounds(n, delta):.1f}",
                ],
            ],
        )
    )
    print()
    print("both outputs verified by the Δ-coloring LCL checker")
    print("randomized phase breakdown:", dict(rand.breakdown))


if __name__ == "__main__":
    main()

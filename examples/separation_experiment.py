#!/usr/bin/env python3
"""The headline experiment, as a runnable script: watch the exponential
separation appear.

Sweeps n on complete Δ-regular trees — the extremal instances of
Theorem 5 — and prints the deterministic (Theorem 9) vs randomized
(Theorem 10) round counts side by side with the calculated lower
bounds.  The deterministic column grows like log_Δ n; the randomized
column stays nearly flat (log_Δ log n + log* n).

Run:  python examples/separation_experiment.py [delta]
"""

import sys

from repro.algorithms import (
    barenboim_elkin_coloring,
    chang_kopelowitz_pettie_coloring,
    pettie_su_tree_coloring,
)
from repro.analysis import Series, ascii_chart, render_table
from repro.graphs.generators import complete_regular_tree_with_size
from repro.lcl import KColoring
from repro.lowerbounds import corollary2_rounds, theorem5_rounds


def main() -> None:
    delta = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    sizes = (100, 1000, 10000, 40000)
    checker = KColoring(delta)
    rows = []
    seen_sizes = set()
    for target in sizes:
        tree = complete_regular_tree_with_size(delta, target)
        n = tree.num_vertices
        if n in seen_sizes:
            continue  # depth quantization: same tree as previous target
        seen_sizes.add(n)
        det = barenboim_elkin_coloring(tree, delta)
        if delta >= 9:
            rand = pettie_su_tree_coloring(tree, seed=1)
        else:
            # Below Theorem 10's Δ >= 9 regime, use the Theorem 11
            # machinery with the guarantee threshold unlocked.
            rand = chang_kopelowitz_pettie_coloring(
                tree, seed=1, min_delta=delta
            )
        checker.check(tree, det.labeling)
        checker.check(tree, rand.labeling)
        rows.append(
            [
                n,
                det.rounds,
                rand.rounds,
                f"{theorem5_rounds(n, delta):.1f}",
                f"{corollary2_rounds(n, delta):.1f}",
            ]
        )
    print(f"Δ = {delta}: Δ-coloring complete Δ-regular trees")
    print(
        render_table(
            [
                "n",
                "det rounds",
                "rand rounds",
                "det LB (Thm 5)",
                "rand LB (Cor 2)",
            ],
            rows,
        )
    )
    det_series = Series("det (Theorem 9)")
    rand_series = Series("rand (Theorem 10)")
    for row in rows:
        det_series.add(row[0], [row[1]])
        rand_series.add(row[0], [row[2]])
    print()
    print(ascii_chart([det_series, rand_series], height=8))
    det_growth = rows[-1][1] - rows[0][1]
    rand_growth = rows[-1][2] - rows[0][2]
    print()
    print(
        f"over a {sizes[-1] // sizes[0]}x size increase: deterministic "
        f"+{det_growth} rounds, randomized +{rand_growth} rounds"
    )
    print(
        "the deterministic growth tracks log_Δ n; the randomized "
        "tracks log_Δ log n — Theorem 3 says no randomized algorithm "
        "can do better than re-running the deterministic one on "
        "poly(log n)-size shattered pieces"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Domain scenario: deadlock-free egress in a switch fabric.

Sinkless orientation — the problem behind the paper's Ω(log_Δ log n)
randomized lower bound — has a concrete systems reading: every switch
in a fabric must end up with at least one *outgoing* link (an egress it
can always drain traffic to), with all orientation decisions made
locally.  A switch with no egress is a potential deadlock.

The script builds a Δ-regular fabric, solves the problem with both the
RandLOCAL sink-fixing protocol and the full-knowledge DetLOCAL rule,
and contrasts the measured rounds with the lower bounds the paper's
machinery yields for this very problem.

Run:  python examples/deadlock_free_routing.py [n] [delta]
"""

import math
import random
import sys

from repro.algorithms import (
    deterministic_sinkless_orientation,
    random_sinkless_orientation,
)
from repro.analysis import render_table
from repro.graphs.generators import random_regular_graph
from repro.lcl import SinklessOrientation, count_sinks, orientation_out_degrees


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    delta = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    rng = random.Random(99)
    fabric = random_regular_graph(n, delta, rng)
    problem = SinklessOrientation()

    rand_report, stabilized = random_sinkless_orientation(fabric, seed=3)
    problem.check(fabric, rand_report.labeling)

    det_report = deterministic_sinkless_orientation(fabric)
    problem.check(fabric, det_report.labeling)

    print(f"switch fabric: n={n}, degree {delta}")
    print(
        render_table(
            ["strategy", "rounds", "sinks left", "min egress"],
            [
                [
                    "randomized sink-fixing",
                    stabilized,
                    count_sinks(fabric, rand_report.labeling),
                    min(
                        orientation_out_degrees(
                            fabric, rand_report.labeling
                        )
                    ),
                ],
                [
                    "full-knowledge canonical rule",
                    det_report.rounds,
                    count_sinks(fabric, det_report.labeling),
                    min(
                        orientation_out_degrees(fabric, det_report.labeling)
                    ),
                ],
            ],
        )
    )
    print()
    print(
        "lower bounds for this problem (Brandt et al. via the paper's "
        "Section IV machinery):"
    )
    print(
        f"  RandLOCAL: Ω(log_Δ log n) ~ "
        f"{math.log(math.log(n)) / math.log(delta):.1f} rounds"
    )
    print(
        f"  DetLOCAL (via Theorem 3): Ω(log_Δ n) ~ "
        f"{math.log(n) / math.log(delta):.1f} rounds"
    )
    print(
        "the deterministic algorithm pays Θ(diameter) = Θ(log_Δ n), "
        "matching its bound's shape; the randomized one stabilizes "
        "far faster — another face of the exponential separation."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Theorem 3, live: turn Luby's randomized MIS into a deterministic
algorithm by fixing a good seed function.

The theorem's construction — seed function φ: ID -> random bits, union
bound over the finite graph family 𝒢_{n,Δ} — is doubly exponential at
full scale (N = 2^(n²)), but completely executable at toy scale.  The
script enumerates every labeled graph on n <= 4 vertices, searches for
a φ that makes the seeded Luby succeed on *all* of them at once, and
then runs the resulting deterministic algorithm.

Run:  python examples/derandomization_demo.py
"""

from repro.algorithms import LubyMIS
from repro.analysis import render_table
from repro.lcl import MaximalIndependentSet
from repro.transforms import enumerate_family, find_good_seed_function


def main() -> None:
    problem = MaximalIndependentSet()
    rows = []
    for n, delta in ((3, 2), (4, 3)):
        result = find_good_seed_function(
            lambda: LubyMIS(), problem, n, delta, max_candidates=512
        )
        # The derived algorithm is deterministic: replay it twice on
        # every family member and confirm identical, correct outputs.
        deterministic = True
        correct = True
        for graph in enumerate_family(n, delta):
            a = result.run(graph)
            b = result.run(graph)
            deterministic &= a.outputs == b.outputs
            correct &= problem.is_solution(graph, a.outputs)
        rows.append(
            [
                n,
                delta,
                result.family_checked,
                result.candidates_tried,
                "yes" if deterministic else "NO",
                "yes" if correct else "NO",
            ]
        )
    print("Theorem 3 at toy scale: derandomizing Luby's MIS")
    print(
        render_table(
            [
                "n",
                "Δ",
                "|family|",
                "seeds tried",
                "deterministic",
                "correct on family",
            ],
            rows,
        )
    )
    print()
    print(
        "the same union bound, at full scale, gives "
        "Det_P(n, Δ) <= Rand_P(2^(n²), Δ): every optimal RandLOCAL "
        "algorithm secretly contains an optimal DetLOCAL algorithm "
        "for poly(log n)-size instances — graph shattering is "
        "unavoidable."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Domain scenario: distributed frequency assignment in a radio mesh.

A classic motivation for distributed vertex coloring: radio nodes that
share an edge interfere and must transmit on different frequencies,
with no central coordinator and only local message exchange.  Colors =
frequencies; the number of communication rounds before the network is
operational is exactly the LOCAL-model round complexity.

The script builds a random Δ-regular mesh and compares three
self-organizing strategies from the library:

1. (Δ+1) frequencies via Linial + Kuhn–Wattenhofer (DetLOCAL,
   O(log* n) + O(Δ log Δ) rounds) — few rounds, a few spare channels;
2. cluster heads via Luby's MIS (RandLOCAL) — a dominating independent
   set to anchor TDMA clusters;
3. pairwise link assignment via maximal matching — full-duplex link
   scheduling.

Run:  python examples/frequency_assignment.py [n] [delta]
"""

import random
import sys

from repro.algorithms import (
    delta_plus_one_coloring,
    deterministic_matching,
    luby_mis,
)
from repro.analysis import render_table
from repro.graphs.generators import random_regular_graph
from repro.lcl import (
    KColoring,
    MaximalIndependentSet,
    MaximalMatching,
    independent_set_from_labeling,
    matching_edges,
    palette_size,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    delta = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    rng = random.Random(2024)
    mesh = random_regular_graph(n, delta, rng)

    coloring = delta_plus_one_coloring(mesh)
    KColoring(delta + 1).check(mesh, coloring.labeling)

    heads = luby_mis(mesh, seed=5)
    MaximalIndependentSet().check(mesh, heads.labeling)
    head_set = independent_set_from_labeling(heads.labeling)

    links = deterministic_matching(mesh)
    MaximalMatching().check(mesh, links.labeling)
    paired = matching_edges(mesh, links.labeling)

    print(f"radio mesh: n={n} nodes, degree {delta}")
    print(
        render_table(
            ["task", "algorithm", "rounds", "result"],
            [
                [
                    "frequencies",
                    "Linial + KW reduction",
                    coloring.rounds,
                    f"{palette_size(coloring.labeling)} channels",
                ],
                [
                    "cluster heads",
                    "Luby MIS",
                    heads.rounds,
                    f"{len(head_set)} heads",
                ],
                [
                    "link pairing",
                    "matching by color turns",
                    links.rounds,
                    f"{len(paired)} full-duplex links",
                ],
            ],
        )
    )
    print()
    uncovered = [
        v
        for v in mesh.vertices()
        if v not in head_set
        and not any(u in head_set for u in mesh.neighbors(v))
    ]
    print(f"nodes without an adjacent cluster head: {len(uncovered)}")
    print("all three outputs verified by their LCL checkers")


if __name__ == "__main__":
    main()

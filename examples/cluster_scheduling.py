#!/usr/bin/env python3
"""Domain scenario: hierarchical coordination in a peer-to-peer overlay.

Large decentralized systems stage coordination hierarchically: pick
well-spread supervisors (a ruling set), partition the network into
low-diameter clusters around natural leaders (a network decomposition),
and schedule conflicting work (a coloring of the cluster structure).
Each primitive is a LOCAL-model algorithm from the library, and the
round counts are the protocol's actual synchronization cost.

Run:  python examples/cluster_scheduling.py [n] [delta]
"""

import random
import sys

from repro.algorithms import (
    clusters_are_connected,
    decomposition_coloring,
    deterministic_ruling_set,
    mpx_decomposition,
)
from repro.analysis import render_table
from repro.graphs.generators import random_regular_graph
from repro.lcl import KColoring, RulingSet


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    delta = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    rng = random.Random(7)
    overlay = random_regular_graph(n, delta, rng)

    # Supervisors: a (3, 2)-ruling set — pairwise distance >= 3, every
    # peer within 2 hops of a supervisor.
    supervisors = deterministic_ruling_set(overlay, alpha=3)
    RulingSet(3, 2).check(overlay, supervisors.labeling)
    num_supervisors = sum(supervisors.labeling)

    # Clusters: MPX exponential-shift decomposition.
    decomposition = mpx_decomposition(overlay, beta=0.35, seed=11)
    assert clusters_are_connected(overlay, decomposition)

    # Work scheduling: a (Δ+1)-coloring built cluster-by-cluster.
    schedule = decomposition_coloring(overlay, decomposition, seed=11)
    KColoring(delta + 1).check(overlay, schedule.labeling)

    print(f"peer-to-peer overlay: n={n}, degree {delta}")
    print(
        render_table(
            ["stage", "rounds", "outcome"],
            [
                [
                    "supervisors (ruling set)",
                    supervisors.rounds,
                    f"{num_supervisors} supervisors",
                ],
                [
                    "clustering (MPX)",
                    decomposition.rounds,
                    (
                        f"{len(decomposition.clusters)} clusters, "
                        f"radius <= {decomposition.max_radius()}"
                    ),
                ],
                [
                    "work schedule (coloring)",
                    schedule.rounds,
                    f"{delta + 1} conflict-free slots",
                ],
            ],
        )
    )
    cut = decomposition.cut_edges(overlay)
    print()
    print(
        f"inter-cluster links: {cut}/{overlay.num_edges} "
        f"({100.0 * cut / overlay.num_edges:.0f}% — tuned by β)"
    )
    print("every stage verified by its checker")


if __name__ == "__main__":
    main()

"""E1 — Linial's coloring (Theorems 1 and 2).

Claim: iterated one-round recoloring reaches an O(Δ²) palette in
O(log* n − log* Δ + 1) rounds.  We sweep n over four orders of magnitude
at Δ ∈ {2, 8} and check (a) every output is a proper coloring, (b) the
final palette stays below our construction's fixed point β·Δ², and
(c) rounds grow log*-slowly (flat to within an additive 3 across the
whole sweep).
"""

import random

from repro.algorithms import LinialColoring, linial_fixed_point
from repro.analysis import ExperimentRecord, Series, log_star
from repro.core import Model, run_local
from repro.graphs.generators import path_graph, random_tree_bounded_degree
from repro.lcl import ProperColoring

SIZES = (256, 2048, 16384, 131072)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E1", "Linial coloring: rounds and palette vs n"
    )
    checker = ProperColoring()
    for delta, make in (
        (2, lambda n, rng: path_graph(n)),
        (8, lambda n, rng: random_tree_bounded_degree(n, 8, rng)),
    ):
        rounds_series = Series(f"rounds (Δ={delta})")
        palette_series = Series(f"palette (Δ={delta})")
        all_proper = True
        palette_bounded = True
        for n in SIZES:
            rng = random.Random(n)
            g = make(n, rng)
            result = run_local(g, LinialColoring(), Model.DET)
            all_proper &= checker.is_solution(g, result.outputs)
            palette = max(result.outputs) + 1
            palette_bounded &= palette <= linial_fixed_point(
                max(1, g.max_degree)
            )
            rounds_series.add(n, [result.rounds])
            palette_series.add(n, [palette])
        record.add_series(rounds_series)
        record.add_series(palette_series)
        record.check(f"proper coloring (Δ={delta})", all_proper)
        record.check(f"palette <= β·Δ² (Δ={delta})", palette_bounded)
        means = rounds_series.means
        record.check(
            f"log*-flat rounds (Δ={delta})", means[-1] <= means[0] + 3
        )
    record.note(
        f"log* of sweep endpoints: {log_star(SIZES[0])} .. "
        f"{log_star(SIZES[-1])}"
    )
    return record


def test_e01_linial(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""E13 — round elimination on sinkless orientation (Lemmas 1-2's
engine, executable).

The Brandt et al. bound that Theorem 4 generalizes rests on sinkless
orientation being (essentially) a fixed point of the round-elimination
operator: eliminating a round never trivializes it, so no O(1)-round
algorithm exists, and the failure-probability bookkeeping of Lemmas 1-2
stretches that to Ω(log log n) randomized.  We execute the operator:

- ``re(SO_vertex)`` must equal ``SO_edge`` exactly (the free
  half-step);
- iterating ``re`` for several steps must keep the problem nontrivial
  with a 2-label alphabet (the fixed-point behavior), and the sequence
  must cycle with period 2 up to renaming;
- the trivial control problem must collapse immediately;
- the certified elimination depth is cross-checked against the Lemma
  1-2 probability chain: both certify super-constant round complexity.
"""

from repro.analysis import ExperimentRecord, Series
from repro.lowerbounds import max_eliminable_rounds
from repro.lowerbounds.roundeliminator import (
    BipartiteProblem,
    edge_grabbing_problem,
    problems_equivalent,
    round_eliminate,
    sinkless_orientation_problem,
    survives_elimination,
)

STEPS = 5


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E13", "Round elimination: sinkless orientation never trivializes"
    )
    for delta in (3, 4):
        so = sinkless_orientation_problem(delta)
        so_edge = BipartiteProblem.make(
            f"so-edge-{delta}",
            2,
            delta,
            [["O", "I"]],
            [
                ["O"] * k + ["I"] * (delta - k)
                for k in range(1, delta + 1)
            ],
        )
        record.check(
            f"re(SO_vertex) = SO_edge (Δ={delta})",
            problems_equivalent(round_eliminate(so), so_edge) is not None,
        )
        record.check(
            f"SO survives {STEPS} eliminations (Δ={delta})",
            survives_elimination(so, steps=STEPS),
        )
        labels = Series(f"alphabet size per step (Δ={delta})")
        current = so
        for step in range(STEPS):
            labels.add(step, [len(current.labels)])
            current = round_eliminate(current)
        record.add_series(labels)
        record.check(
            f"alphabet stays at 2 labels (Δ={delta})",
            all(point.mean == 2 for point in labels.points),
        )
    so = sinkless_orientation_problem(3)
    r1 = round_eliminate(so)
    r3 = round_eliminate(round_eliminate(r1))
    record.check(
        "elimination sequence cycles with period 2",
        problems_equivalent(r1, r3) is not None,
    )
    record.check(
        "trivial control collapses",
        not survives_elimination(edge_grabbing_problem(), steps=2),
    )
    chain = Series("rounds certified by Lemma 1-2 chain vs log(1/p)")
    for exponent in (8, 64, 256):  # 10^-308 underflows float64
        chain.add(exponent, [max_eliminable_rounds(10.0 ** -exponent, 3)])
    record.add_series(chain)
    record.check(
        "probability chain certifies growing depth",
        chain.means[-1] > chain.means[0],
    )
    record.note(
        "a problem surviving k eliminations is unsolvable in < k rounds "
        "regardless of n; Lemmas 1-2 convert survival into the "
        "Ω(log_Δ log n) of Theorem 4"
    )
    return record


def test_e13_round_elimination(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""E10 — sinkless orientation: upper bounds complementing the paper's
lower bounds.

Brandt et al. (via Theorem 4's machinery) prove Ω(log log n) randomized
and — with Theorem 3 — Ω(log n) deterministic lower bounds for sinkless
orientation on Δ-regular graphs.  We measure the upper-bound side:

- the randomized sink-fixing heuristic's stabilization time, swept over
  n (slow growth, far from linear);
- the full-knowledge deterministic algorithm, whose cost is exactly
  diameter + 2 = Θ(log_Δ n) rounds on regular graphs;
- every measurement must respect the corresponding lower-bound shape:
  det rounds grow with log n, and rand stabilization stays below det
  rounds at scale.
"""

import random

from repro.algorithms import (
    deterministic_sinkless_orientation,
    random_sinkless_orientation,
)
from repro.analysis import ExperimentRecord, Series, log_base
from repro.graphs.generators import random_regular_graph
from repro.lcl import SinklessOrientation

DEGREE = 3
RAND_SIZES = (256, 1024, 4096, 16384)
DET_SIZES = (128, 512, 2048)
SEEDS = (0, 1, 2)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E10", "Sinkless orientation: rand stabilization and det rounds"
    )
    problem = SinklessOrientation()
    rand_series = Series("rand stabilization rounds")
    valid = True
    for n in RAND_SIZES:
        values = []
        for seed in SEEDS:
            rng = random.Random(seed * 7919 + n)
            g = random_regular_graph(n, DEGREE, rng)
            report, stabilized = random_sinkless_orientation(g, seed=seed)
            valid &= problem.is_solution(g, report.labeling)
            values.append(stabilized)
        rand_series.add(n, values)
    record.add_series(rand_series)
    record.check("randomized orientations valid", valid)
    record.check(
        "rand stabilization bounded by O(log n)",
        all(
            point.maximum <= 3 * log_base(point.x, 2)
            for point in rand_series.points
        ),
    )

    det_series = Series("det rounds (diameter + 2)")
    det_valid = True
    for n in DET_SIZES:
        rng = random.Random(n)
        g = random_regular_graph(n, DEGREE, rng)
        report = deterministic_sinkless_orientation(g)
        det_valid &= problem.is_solution(g, report.labeling)
        det_series.add(n, [report.rounds])
    record.add_series(det_series)
    record.check("deterministic orientations valid", det_valid)
    record.check(
        "det rounds grow logarithmically",
        det_series.means[-1] > det_series.means[0],
    )
    record.note(
        "the deterministic cost tracks the diameter Θ(log_Δ n), "
        "matching the Ω(log n) DetLOCAL lower bound's shape"
    )
    record.note(
        "the sink-fixing heuristic stabilizes in O(log n)-type time; "
        "the O(log log n) upper bound needs the Ghaffari-Su LLL "
        "machinery, which is outside the paper's scope"
    )
    return record


def test_e10_sinkless(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""Shared infrastructure for the experiment benchmarks.

Each ``bench_eXX_*.py`` module reproduces one experiment from
EXPERIMENTS.md (the paper has no numbered tables/figures; the experiment
index in DESIGN.md §5 defines the targets).  Conventions:

- every test drives its experiment through ``benchmark.pedantic(run,
  rounds=1, iterations=1)`` so ``pytest benchmarks/ --benchmark-only``
  executes and times it exactly once;
- the experiment function returns an
  :class:`repro.analysis.ExperimentRecord` whose named checks encode the
  paper-shape assertions (who wins, growth class, bound sandwiches);
- the rendered record is written to ``benchmarks/results/<id>.txt`` and
  echoed to stdout, so ``bench_output.txt`` carries the tables.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=None,
        help="process-pool size for run_sweep-based benchmarks "
        "(default: serial; results are bit-identical either way)",
    )


@pytest.fixture
def sweep_workers(request):
    """The --workers value, passed to run_sweep by sweep benchmarks."""
    return request.config.getoption("--workers")


@pytest.fixture
def record_experiment():
    """Persist and display an ExperimentRecord; fail on failed checks."""

    def _record(record):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = record.render()
        path = RESULTS_DIR / f"{record.experiment_id.lower()}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        assert record.all_checks_pass, (
            f"{record.experiment_id} checks failed: "
            f"{[k for k, v in record.checks.items() if not v]}"
        )
        return record

    return _record

"""In-run checkpoint kill-resume smoke test (CI; ~15 s wall clock).

Exercises the round-boundary checkpoint contract across a real
SIGKILL: a child process runs a checkpointed n = 10^4 coloring
workload through ``repro run`` (on the vectorized backend when numpy
is importable), the parent SIGKILLs it the moment the first in-flight
snapshot lands, then resumes with ``--resume`` and asserts both the
summary and the JSONL trace are **byte-identical** to an
uninterrupted run.  See ``docs/robustness.md``.

Usage: ``python benchmarks/checkpoint_smoke.py [outdir]`` — exits 0 on
success and prints one PASS line; any other exit is a failure.  When
``outdir`` is given the checkpoint directory, traces, and timing
sidecar are left there for artifact upload instead of a tempdir.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.core import available_backend_names  # noqa: E402

N = 10_000
DELTA = 9
SEED = 1
#: Bigger follow-up sizes if the run outraces the parent's SIGKILL.
ESCALATION = [N, 40_000, 160_000]


def run_cmd(outdir, tag, *, resume=False, checkpoint=True, n=N):
    cmd = [
        sys.executable, "-m", "repro.cli", "run",
        "--workload", "coloring", "--n", str(n), "--delta", str(DELTA),
        "--seed", str(SEED),
        "--trace", os.path.join(outdir, f"{tag}.trace.jsonl"),
        "--timing-sidecar", os.path.join(outdir, f"{tag}.timing.jsonl"),
    ]
    if checkpoint:
        cmd += [
            "--checkpoint-dir", os.path.join(outdir, "ck"),
            "--checkpoint-every", "1",
        ]
    if resume:
        cmd += ["--resume"]
    return cmd


def env_with_backend():
    env = dict(os.environ)
    backends = available_backend_names()
    env["REPRO_BACKEND"] = (
        "vectorized" if "vectorized" in backends else "fast"
    )
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return env


def kill_once_checkpointed(outdir, env, n):
    """Launch a checkpointed run and SIGKILL it at the first snapshot.

    Returns True when the kill genuinely landed mid-flight (the child
    died to the signal), False when the run finished first.
    """
    ck = os.path.join(outdir, "ck")
    child = subprocess.Popen(
        run_cmd(outdir, "resumed", n=n), env=env,
        stdout=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120
    try:
        while child.poll() is None:
            if glob.glob(os.path.join(ck, "slot-*.ckpt")):
                child.send_signal(signal.SIGKILL)
                break
            if time.monotonic() > deadline:
                raise AssertionError(
                    "child never wrote a snapshot within 120s"
                )
            time.sleep(0.002)
    finally:
        child.wait(timeout=60)
    return child.returncode == -signal.SIGKILL


def read(path):
    with open(path, "rb") as handle:
        return handle.read()


def main(outdir):
    env = env_with_backend()
    for n in ESCALATION:
        for stale in glob.glob(os.path.join(outdir, "ck", "slot-*")):
            os.unlink(stale)
        if kill_once_checkpointed(outdir, env, n):
            break
        print(
            f"  (n = {n} finished before SIGKILL landed; escalating)",
            flush=True,
        )
    else:
        raise AssertionError(
            "every escalation size finished before SIGKILL — "
            "nothing was interrupted, the smoke proves nothing"
        )

    # Resume the killed run, then produce the uninterrupted baseline.
    resumed = subprocess.run(
        run_cmd(outdir, "resumed", resume=True, n=n), env=env,
        stdout=subprocess.PIPE, check=True,
    )
    baseline = subprocess.run(
        run_cmd(outdir, "baseline", checkpoint=False, n=n), env=env,
        stdout=subprocess.PIPE, check=True,
    )
    assert resumed.stdout == baseline.stdout, (
        "resumed summary differs from the uninterrupted run's"
    )
    summary = json.loads(resumed.stdout)
    assert summary["n"] == n and summary["rounds"] > 0

    resumed_trace = read(os.path.join(outdir, "resumed.trace.jsonl"))
    baseline_trace = read(os.path.join(outdir, "baseline.trace.jsonl"))
    assert resumed_trace, "resumed trace is empty"
    assert resumed_trace == baseline_trace, (
        "resumed trace bytes differ from the uninterrupted run's"
    )
    print(
        f"PASS checkpoint smoke: SIGKILLed {env['REPRO_BACKEND']} "
        f"n = {n} run mid-flight; resumed trace "
        f"({len(resumed_trace)} bytes) byte-identical to an "
        "uninterrupted run"
    )
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1:
        os.makedirs(sys.argv[1], exist_ok=True)
        sys.exit(main(os.path.abspath(sys.argv[1])))
    with tempfile.TemporaryDirectory() as tmp:
        sys.exit(main(tmp))

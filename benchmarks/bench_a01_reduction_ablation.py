"""Ablation A1 — palette-reduction strategy (design choice, DESIGN.md).

Our pipelines reduce O(Δ²) Linial colors to Δ+1 either class-by-class
(the textbook O(Δ²)-round sweep) or by Kuhn–Wattenhofer halving
(O(Δ·log Δ) rounds).  The asymptotics of every theorem are unaffected —
this ablation quantifies the constant-factor choice: KW must never lose,
and its advantage must widen as Δ grows.
"""

import random

from repro.algorithms import delta_plus_one_coloring
from repro.analysis import ExperimentRecord, Series
from repro.graphs.generators import random_regular_graph
from repro.lcl import KColoring

N = 400
DELTAS = (4, 8, 12, 16)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "A1", "Ablation: class-by-class vs Kuhn-Wattenhofer reduction"
    )
    classic = Series("classic reduction rounds")
    kw = Series("Kuhn-Wattenhofer rounds")
    valid = True
    never_loses = True
    gaps = []
    for delta in DELTAS:
        rng = random.Random(delta)
        g = random_regular_graph(N, delta, rng)
        a = delta_plus_one_coloring(g, reduction="classic")
        b = delta_plus_one_coloring(g, reduction="kw")
        checker = KColoring(delta + 1)
        valid &= checker.is_solution(g, a.labeling)
        valid &= checker.is_solution(g, b.labeling)
        classic.add(delta, [a.rounds])
        kw.add(delta, [b.rounds])
        never_loses &= b.rounds <= a.rounds
        gaps.append(a.rounds - b.rounds)
    record.add_series(classic)
    record.add_series(kw)
    record.check("both reductions valid", valid)
    record.check("KW never slower", never_loses)
    record.check("KW advantage widens with Δ", gaps[-1] > gaps[0])
    record.note(f"round gaps across Δ={list(DELTAS)}: {gaps}")
    return record


def test_a01_reduction_ablation(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

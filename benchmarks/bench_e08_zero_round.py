"""E8 — Theorem 4's base case: 0-round sinkless coloring fails with
probability >= 1/Δ².

We verify the claim two ways for Δ ∈ 3..12: numerically (scipy SLSQP
minimization of max_c p_c² over the probability simplex must land on
the closed form 1/Δ², i.e. the uniform distribution) and adversarially
(a family of port-aware strategies, which may condition on the observed
port order, still cannot beat the floor).
"""

from repro.analysis import ExperimentRecord, Series
from repro.lowerbounds import (
    closed_form_optimum,
    optimal_zero_round_failure,
    port_aware_failure,
)

DELTAS = (3, 4, 5, 6, 8, 10, 12)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E8", "0-round sinkless coloring: minimax failure = 1/Δ²"
    )
    closed = Series("closed form 1/Δ²")
    numeric = Series("scipy minimax optimum")
    adversarial = Series("best port-aware strategy probed")
    matches = True
    floor_respected = True
    for delta in DELTAS:
        cf = closed_form_optimum(delta)
        num = optimal_zero_round_failure(delta)
        closed.add(delta, [cf])
        numeric.add(delta, [num])
        matches &= abs(num - cf) <= 1e-3 * cf
        strategies = [
            lambda order, d=delta: [1.0 / d] * d,
            lambda order, d=delta: [
                1.0 if c == order[0] else 0.0 for c in range(d)
            ],
            lambda order, d=delta: [
                (2.0 if c == order[-1] else 1.0)
                / (d + 1.0)
                for c in range(d)
            ],
        ]
        best = min(
            port_aware_failure(s, delta, trials=40) for s in strategies
        )
        adversarial.add(delta, [best])
        floor_respected &= best >= cf - 1e-12
    record.add_series(closed)
    record.add_series(numeric)
    record.add_series(adversarial)
    record.check("numerical optimum matches 1/Δ²", matches)
    record.check("no probed strategy beats the floor", floor_respected)
    record.note(
        "uniform coloring is optimal; the impossibility seeds the "
        "round-elimination chain of Theorem 4"
    )
    return record


def test_e08_zero_round(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

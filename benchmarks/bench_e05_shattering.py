"""E5 — graph shattering: residual components are small.

Claim (Theorem 10 analysis): after Phase 1, the *bad* vertices form
connected components of size O(Δ⁴ log n) with high probability — the
quantitative heart of the graph-shattering technique that Theorem 3
proves unavoidable.  We sweep n and Δ, record the largest residual
component over several seeds, and check every observation against the
Δ⁴·log n bound (which should hold with room to spare) and for the
O(log n)-type growth of the maxima.
"""

import random

from repro.algorithms import ColorBiddingAlgorithm, ColorBiddingConfig
from repro.algorithms.rand_tree_coloring import BAD, reserved_colors
from repro.analysis import ExperimentRecord, Series
from repro.core import Model, run_local
from repro.graphs.generators import random_tree_bounded_degree
from repro.transforms import component_size_threshold, shatter

SIZES = (1000, 4000, 16000)
DELTAS = (9, 16)
SEEDS = (0, 1, 2)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E5", "Shattering: max bad-component size vs n and Δ"
    )
    for delta in DELTAS:
        series = Series(f"max component (Δ={delta})")
        bad_series = Series(f"bad vertices (Δ={delta})")
        within_bound = True
        for n in SIZES:
            max_components = []
            bad_counts = []
            for seed in SEEDS:
                rng = random.Random(seed * 1000 + n)
                g = random_tree_bounded_degree(n, delta, rng)
                result = run_local(
                    g,
                    ColorBiddingAlgorithm(),
                    Model.RAND,
                    seed=seed,
                    global_params={
                        "config": ColorBiddingConfig(),
                        "main_palette": delta - reserved_colors(delta),
                    },
                )
                outcome = shatter(g, result.outputs, BAD)
                max_components.append(outcome.max_component)
                bad_counts.append(len(outcome.residual))
                within_bound &= (
                    outcome.max_component
                    <= component_size_threshold(n, delta)
                )
            series.add(n, max_components)
            bad_series.add(n, bad_counts)
        record.add_series(series)
        record.add_series(bad_series)
        record.check(f"components within Δ⁴·log n (Δ={delta})", within_bound)
        record.check(
            f"components sub-linear in n (Δ={delta})",
            series.means[-1] <= 0.05 * SIZES[-1],
        )
    record.note(
        "paper bound at the sweep corner: "
        f"{component_size_threshold(SIZES[-1], DELTAS[-1]):.0f}"
    )
    return record


def test_e05_shattering(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""E12 — the indistinguishability principle, measured.

The step that transfers the paper's lower bounds to trees: on graphs of
girth > 2t+1, every radius-t view is a tree, so a t-round algorithm
behaves exactly as on a tree.  We verify all three faces of the
principle on generated high-girth instances:

1. the premise — every view of the generated Δ-regular graph is a tree
   up to the tree-like radius, and all vertices share one canonical
   tree view (vertex-transitivity in the eyes of any t-round
   algorithm);
2. the consequence for executions — perturbing the graph far from a
   vertex leaves a (<= t)-round algorithm's outputs unchanged inside
   the ball, for both DetLOCAL (Linial) and RandLOCAL (Luby with
   pinned per-vertex streams);
3. the tree-transfer — vertices of the high-girth graph are view-
   equivalent (up to ports) to internal vertices of the complete
   Δ-regular tree.
"""

import random

from repro.algorithms import LinialColoring
from repro.core import SyncAlgorithm
from repro.analysis import ExperimentRecord, Series
from repro.core import Model, collect_view, run_local, tree_canonical_form
from repro.core.engine import make_node_rngs
from repro.graphs.generators import (
    complete_regular_tree,
    high_girth_regular_graph,
)
from repro.lowerbounds import (
    all_views_are_trees,
    far_perturbation,
    matching_view_pairs,
)

DEGREE = 3
N = 700
GIRTH = 10


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E12", "Indistinguishability: high-girth graphs vs trees"
    )
    rng = random.Random(5)
    g = high_girth_regular_graph(N, DEGREE, GIRTH, rng)
    radius = (GIRTH + 1) // 2 - 1

    record.check("premise: all views are trees", all_views_are_trees(g, radius))
    forms = {
        tree_canonical_form(collect_view(g, v, radius))
        for v in range(0, N, 13)
    }
    record.check("all vertices share one canonical view", len(forms) == 1)

    # Far perturbation: DetLOCAL outputs inside the ball are unchanged.
    det_rounds = run_local(g, LinialColoring(), Model.DET).rounds
    center = 0
    sibling = far_perturbation(g, center, radius, rng)
    det_stable = sibling is not None
    if sibling is not None:
        out_a = run_local(g, LinialColoring(), Model.DET).outputs
        out_b = run_local(sibling, LinialColoring(), Model.DET).outputs
        inner = g.ball(center, max(0, radius - det_rounds))
        det_stable = all(out_a[v] == out_b[v] for v in inner)
    record.check("DetLOCAL outputs view-determined", det_stable)

    # Same for RandLOCAL with pinned per-vertex randomness: a 2-round
    # trial coloring (draw a color, keep it iff no neighbor drew the
    # same) is view-determined within radius 2.
    class TrialColoring(SyncAlgorithm):
        name = "trial-coloring"

        def setup(self, ctx):
            ctx.state["color"] = ctx.random.randrange(ctx.max_degree + 1)
            ctx.publish(ctx.state["color"])

        def step(self, ctx, inbox):
            mine = ctx.state["color"]
            ctx.halt(mine if mine not in set(inbox) else None)

    rngs_master = make_node_rngs(N, 99)
    states = [r.getstate() for r in rngs_master]

    def pinned_run(graph):
        import random as _random

        def factory(v):
            r = _random.Random()
            r.setstate(states[v])
            return r

        return run_local(
            graph, TrialColoring(), Model.RAND, rng_factory=factory
        )

    run_a = pinned_run(g)
    rand_stable = sibling is not None
    if sibling is not None:
        run_b = pinned_run(sibling)
        horizon = max(0, radius - run_a.rounds)
        inner = g.ball(center, horizon)
        rand_stable = all(
            run_a.outputs[v] == run_b.outputs[v] for v in inner
        )
    record.check("RandLOCAL outputs view-determined", rand_stable)

    # Tree transfer: graph vertices match the tree's deep-interior
    # vertices (up to port renumbering).
    tree = complete_regular_tree(DEGREE, radius + 2)
    pairs = matching_view_pairs(
        g, tree, radius, up_to_ports=True
    )
    matched_graph_vertices = {a for a, _ in pairs}
    series = Series("view-equivalent pairs (graph x tree)")
    series.add(N, [len(pairs)])
    record.add_series(series)
    record.check(
        "every graph vertex is view-equivalent to a tree vertex",
        len(matched_graph_vertices) == N,
    )
    record.note(
        f"girth {g.girth()}, tree-like radius {radius}; any "
        f"{radius}-round algorithm cannot tell this graph from a tree"
    )
    return record


def test_e12_indistinguishability(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""Ablation A3 — MPX decomposition: the radius/cut trade-off.

Network decomposition is the deterministic component Theorem 3's
discussion points at (Panconesi–Srinivasan); the randomized MPX
clustering we provide trades cluster radius against cut edges through
β.  This ablation sweeps β and checks the two monotonicities the
analysis promises (radius ~ O(log n / β) falling in β, cut fraction
~ O(β) rising in β), plus cluster connectivity and the end-to-end
validity of decomposition-based coloring.
"""

import random

from repro.algorithms import (
    clusters_are_connected,
    decomposition_coloring,
    mpx_decomposition,
)
from repro.analysis import ExperimentRecord, Series
from repro.graphs.generators import random_regular_graph
from repro.lcl import KColoring

N = 800
DEGREE = 4
BETAS = (0.15, 0.3, 0.6)
SEEDS = (0, 1, 2)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "A3", "Ablation: MPX decomposition radius vs cut trade-off"
    )
    radius_series = Series("max cluster radius vs β")
    cut_series = Series("cut-edge fraction vs β")
    connected = True
    for beta in BETAS:
        radii = []
        cuts = []
        for seed in SEEDS:
            rng = random.Random(seed)
            g = random_regular_graph(N, DEGREE, rng)
            decomposition = mpx_decomposition(g, beta=beta, seed=seed)
            connected &= clusters_are_connected(g, decomposition)
            radii.append(decomposition.max_radius())
            cuts.append(decomposition.cut_edges(g) / g.num_edges)
        radius_series.add(beta, radii)
        cut_series.add(beta, cuts)
    record.add_series(radius_series)
    record.add_series(cut_series)
    record.check("clusters connected under every β", connected)
    record.check(
        "radius falls as β grows",
        radius_series.means[0] > radius_series.means[-1],
    )
    record.check(
        "cut fraction rises as β grows",
        cut_series.means[0] < cut_series.means[-1],
    )

    rng = random.Random(9)
    g = random_regular_graph(N, DEGREE, rng)
    decomposition = mpx_decomposition(g, beta=0.3, seed=9)
    coloring = decomposition_coloring(g, decomposition, seed=9)
    record.check(
        "decomposition-based coloring valid",
        KColoring(DEGREE + 1).is_solution(g, coloring.labeling),
    )
    record.note(
        "the decomposition -> per-cluster-sequential pattern is the "
        "deterministic skeleton Theorem 3 forces optimal randomized "
        "algorithms to contain"
    )
    return record


def test_a03_decomposition(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

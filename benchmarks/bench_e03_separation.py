"""E3 — the headline exponential separation.

Claim (Theorems 5 + 10): Δ-coloring trees takes Θ(log_Δ n) rounds
deterministically but only O(log_Δ log n + log* n) rounds randomized.
We run both on the same complete Δ-regular trees (Δ = 9), sweep n over
two orders of magnitude, and check:

- both algorithms produce valid Δ-colorings;
- the deterministic rounds grow, the randomized rounds stay nearly flat;
- the deterministic *increment* across the sweep dominates the
  randomized increment (the growth-class separation);
- every measurement respects the corresponding calculated lower bound.
"""

from repro.algorithms import (
    barenboim_elkin_coloring,
    pettie_su_tree_coloring,
)
from repro.analysis import ExperimentRecord, Series, run_sweep
from repro.graphs.generators import complete_regular_tree_with_size
from repro.lcl import KColoring
from repro.lowerbounds import corollary2_rounds, theorem5_rounds

DELTA = 9
SIZES = (100, 2000, 40000)
SEEDS = (0, 1, 2)


def _rand_measure(n: float, seed: int) -> float:
    """One randomized cell — a pure function of (n, seed), so the
    sweep may fan it out to pool workers without changing results.
    Validity is enforced here (raising) because worker-side mutations
    of parent-scope flags would be lost across the fork boundary."""
    g = complete_regular_tree_with_size(DELTA, int(n))
    report = pettie_su_tree_coloring(g, seed=seed)
    if not KColoring(DELTA).is_solution(g, report.labeling):
        raise AssertionError(
            f"invalid randomized coloring: n={g.num_vertices} seed={seed}"
        )
    return float(report.rounds)


def run_experiment(workers=None) -> ExperimentRecord:
    record = ExperimentRecord(
        "E3",
        f"Exponential separation: Δ={DELTA}-coloring trees, "
        "DetLOCAL vs RandLOCAL",
    )
    checker = KColoring(DELTA)
    det_series = Series("DetLOCAL rounds (Theorem 9, q=Δ)")
    rand_series = Series("RandLOCAL rounds (Theorem 10)")
    det_valid = True
    above_bounds = True
    actual_sizes = []
    for n in SIZES:
        g = complete_regular_tree_with_size(DELTA, n)
        actual_sizes.append(g.num_vertices)
        det = barenboim_elkin_coloring(g, DELTA)
        det_valid &= checker.is_solution(g, det.labeling)
        det_series.add(g.num_vertices, [det.rounds])
        above_bounds &= det.rounds >= theorem5_rounds(
            g.num_vertices, DELTA, epsilon=0.5
        )
    sweep = run_sweep(
        "rand", SIZES, _rand_measure, seeds=SEEDS, workers=workers
    )
    for point, g_n in zip(sweep.points, actual_sizes):
        rand_series.add(g_n, point.values)
        above_bounds &= all(
            v >= corollary2_rounds(g_n, DELTA, epsilon=0.5)
            for v in point.values
        )
    record.add_series(det_series)
    record.add_series(rand_series)
    record.check("deterministic colorings valid", det_valid)
    # Randomized validity is enforced per cell inside _rand_measure
    # (an invalid coloring raises and aborts the sweep).
    record.check("randomized colorings valid", True)
    det_increment = det_series.means[-1] - det_series.means[0]
    rand_increment = rand_series.means[-1] - rand_series.means[0]
    record.check("deterministic rounds grow", det_increment > 0)
    record.check(
        "randomized rounds nearly flat", rand_increment <= 15
    )
    record.check(
        "growth separation (det increment >> rand increment)",
        det_increment >= max(6.0, 1.8 * rand_increment),
    )
    record.check("all measurements above lower bounds", above_bounds)
    record.note(
        f"increments over the sweep: det +{det_increment:.1f}, "
        f"rand +{rand_increment:.1f}"
    )
    return record


def test_e03_separation(benchmark, record_experiment, sweep_workers):
    record = benchmark.pedantic(
        run_experiment,
        kwargs={"workers": sweep_workers},
        rounds=1,
        iterations=1,
    )
    record_experiment(record)

"""Ablation A2 — the ColorBidding constants (Theorem 10's Phase 1).

The paper fixes P1's palette guard to Δ/200 and the escalation rate to
exp(c/(3·200·e^200)) — proof-convenient values that would stall any
finite experiment (see the module docstring of
``repro.algorithms.rand_tree_coloring``).  This ablation sweeps the two
knobs of our practical equivalent and measures what they trade:

- a *stricter* palette guard (smaller divisor) bails out earlier, so
  the bad fraction rises;
- a *slower* escalation (larger denominator) runs more iterations with
  gentler bidding, so fewer vertices go bad but Phase 1 takes longer.

Every configuration must keep the partial coloring proper (the
correctness invariant is config-independent).
"""

import random

from repro.algorithms import ColorBiddingAlgorithm, ColorBiddingConfig
from repro.algorithms.rand_tree_coloring import BAD, reserved_colors
from repro.analysis import ExperimentRecord, Series
from repro.core import Model, run_local
from repro.graphs.generators import random_tree_bounded_degree

N = 3000
DELTA = 16
GUARDS = (1.5, 4.0, 16.0)
GROWTHS = (2.0, 8.0, 32.0)


def _phase1(graph, config, seed):
    return run_local(
        graph,
        ColorBiddingAlgorithm(),
        Model.RAND,
        seed=seed,
        global_params={
            "config": config,
            "main_palette": DELTA - reserved_colors(DELTA),
        },
    )


def _proper_partial(graph, outputs):
    for v in graph.vertices():
        if outputs[v] == BAD:
            continue
        for u in graph.neighbors(v):
            if outputs[u] != BAD and outputs[u] == outputs[v]:
                return False
    return True


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "A2", "Ablation: ColorBidding palette guard and escalation rate"
    )
    rng = random.Random(7)
    graph = random_tree_bounded_degree(N, DELTA, rng)

    guard_series = Series("bad fraction vs palette guard")
    proper = True
    bad_by_guard = []
    for guard in GUARDS:
        config = ColorBiddingConfig(palette_guard=guard)
        result = _phase1(graph, config, seed=1)
        proper &= _proper_partial(graph, result.outputs)
        bad = sum(1 for out in result.outputs if out == BAD) / N
        bad_by_guard.append(bad)
        guard_series.add(guard, [bad])
    record.add_series(guard_series)

    growth_series = Series("bad fraction vs escalation denominator")
    rounds_series = Series("phase-1 rounds vs escalation denominator")
    for growth in GROWTHS:
        config = ColorBiddingConfig(growth_denominator=growth)
        result = _phase1(graph, config, seed=1)
        proper &= _proper_partial(graph, result.outputs)
        bad = sum(1 for out in result.outputs if out == BAD) / N
        growth_series.add(growth, [bad])
        rounds_series.add(growth, [result.rounds])
    record.add_series(growth_series)
    record.add_series(rounds_series)

    record.check("partial coloring proper under every config", proper)
    record.check(
        "stricter guard -> more bad vertices",
        bad_by_guard[0] >= bad_by_guard[-1],
    )
    record.check(
        "slower escalation -> longer phase 1",
        rounds_series.means[-1] >= rounds_series.means[0],
    )
    record.note(
        "the paper's (200, 3·200·e^200) sits at the far 'slow' end of "
        "both axes: maximally safe for the proof, unusable to run"
    )
    return record


def test_a02_colorbidding_ablation(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

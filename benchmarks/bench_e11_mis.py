"""E11 — the survey separation (Section I): MIS and matching,
randomized vs deterministic.

Claims from the survey table: RandLOCAL MIS runs in O(log n) (Luby),
DetLOCAL MIS in O(poly(Δ) + log* n) (coloring-based); analogously for
maximal matching.  We sweep n at fixed Δ (the det side must be flat,
the rand side grows slowly) and sweep Δ at fixed n (the det side grows
with Δ, the rand side is Δ-insensitive) — the two directions of the
"exponentially faster in Δ, shattering-limited in n" picture.
"""

import random

from repro.algorithms import (
    deterministic_matching,
    deterministic_mis,
    luby_mis,
    randomized_matching,
)
from repro.analysis import ExperimentRecord, Series
from repro.graphs.generators import random_regular_graph
from repro.lcl import MaximalIndependentSet, MaximalMatching

N_SWEEP = (256, 1024, 4096)
DELTA_FIXED = 4
DELTA_SWEEP = (3, 6, 10, 16)
N_FIXED = 600


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E11", "MIS and matching: rand vs det across n and Δ"
    )
    mis = MaximalIndependentSet()
    matching = MaximalMatching()
    valid = True

    luby_n = Series("Luby-MIS rounds vs n (Δ=4)")
    det_n = Series("det-MIS rounds vs n (Δ=4)")
    for n in N_SWEEP:
        rng = random.Random(n)
        g = random_regular_graph(n, DELTA_FIXED, rng)
        a = luby_mis(g, seed=n)
        b = deterministic_mis(g)
        valid &= mis.is_solution(g, a.labeling)
        valid &= mis.is_solution(g, b.labeling)
        luby_n.add(n, [a.rounds])
        det_n.add(n, [b.rounds])
    record.add_series(luby_n)
    record.add_series(det_n)
    record.check(
        "det MIS flat in n",
        det_n.means[-1] <= det_n.means[0] + 3,
    )

    luby_d = Series(f"Luby-MIS rounds vs Δ (n={N_FIXED})")
    det_d = Series(f"det-MIS rounds vs Δ (n={N_FIXED})")
    match_d = Series(f"det-matching rounds vs Δ (n={N_FIXED})")
    rand_match_d = Series(f"rand-matching rounds vs Δ (n={N_FIXED})")
    for delta in DELTA_SWEEP:
        rng = random.Random(delta)
        g = random_regular_graph(N_FIXED, delta, rng)
        a = luby_mis(g, seed=delta)
        b = deterministic_mis(g)
        c = deterministic_matching(g)
        d = randomized_matching(g, seed=delta)
        valid &= mis.is_solution(g, a.labeling)
        valid &= mis.is_solution(g, b.labeling)
        valid &= matching.is_solution(g, c.labeling)
        valid &= matching.is_solution(g, d.labeling)
        luby_d.add(delta, [a.rounds])
        det_d.add(delta, [b.rounds])
        match_d.add(delta, [c.rounds])
        rand_match_d.add(delta, [d.rounds])
    for series in (luby_d, det_d, match_d, rand_match_d):
        record.add_series(series)

    record.check("all outputs valid", valid)
    record.check(
        "det MIS grows with Δ",
        det_d.means[-1] > 2 * det_d.means[0],
    )
    record.check(
        "rand MIS Δ-insensitive",
        luby_d.means[-1] <= 2 * max(luby_d.means[0], 4),
    )
    record.check(
        "rand matching beats det matching at large Δ",
        rand_match_d.means[-1] < match_d.means[-1],
    )
    return record


def test_e11_mis(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""P0 — engine and sweep throughput (the perf-smoke experiment).

Not a paper experiment: this record tracks the machinery every other
experiment runs on.  Two workloads from :mod:`repro.analysis.perf`:

- the sleep-heavy engine micro-benchmark (class-sweep algorithm on a
  10^4-vertex cycle, 400 wake classes) — the regime where the wake
  buckets + incremental snapshots must beat the O(n)-per-round
  reference engine by >= 3x;
- a scaled-down separation sweep, serial vs ``workers=N`` pool, whose
  parallel Series must be bit-identical to the serial one (enforced by
  ``sweep_metrics``, which raises on divergence);
- a per-backend ColorBidding smoke (``backend_engine_metrics``), which
  raises when any registered backend diverges from the fast engine and
  records the vectorized backend's speedup when the ``[perf]`` extra
  is installed (skipped, never failed, without it).

The parallel wall-clock check is gated on the host's core count: on a
single-core box a process pool cannot beat serial, and the record
documents that instead of failing.  ``repro bench --compare
benchmarks/BENCH_baseline.json`` is the tracked-trajectory companion
to this smoke test.
"""

import os

from repro.analysis import ExperimentRecord, Series
from repro.analysis.perf import (
    backend_engine_metrics,
    engine_sleepheavy_metrics,
    sweep_metrics,
)

ENGINE_N = 10_000
ENGINE_CLASSES = 400
SWEEP_WORKERS = 4
SWEEP_SIZES = (100, 400)
SWEEP_SEEDS = (0, 1, 2)
BACKEND_N = 10_000


def run_experiment(workers=None) -> ExperimentRecord:
    workers = workers or SWEEP_WORKERS
    cpus = os.cpu_count() or 1
    record = ExperimentRecord(
        "P0",
        "Perf smoke: wake-bucket engine and parallel sweep throughput",
    )
    engine = engine_sleepheavy_metrics(
        n=ENGINE_N, classes=ENGINE_CLASSES, repeats=1
    )
    sweep = sweep_metrics(
        workers=workers, sizes=SWEEP_SIZES, seeds=SWEEP_SEEDS
    )

    engine_series = Series("engine rounds/sec (sleep-heavy cycle)")
    engine_series.add(ENGINE_N, [engine["rounds_per_sec"]])
    record.add_series(engine_series)
    cells_series = Series("sweep cells/sec vs worker count")
    cells_series.add(1, [sweep["serial_cells_per_sec"]])
    cells_series.add(workers, [sweep["parallel_cells_per_sec"]])
    record.add_series(cells_series)

    record.check(
        "wake buckets >= 3x over reference engine",
        engine["speedup_vs_reference"] >= 3.0,
    )
    # sweep_metrics raises AssertionError when the pooled Series
    # diverges from the serial one, so reaching this line proves it.
    record.check("parallel sweep bit-identical to serial", True)
    if cpus >= 4:
        parallel_ok = sweep["parallel_speedup"] >= 2.0
    elif cpus >= 2:
        parallel_ok = sweep["parallel_speedup"] >= 1.2
    else:
        parallel_ok = True  # pool overhead only; nothing to gain
    record.check(
        "parallel sweep wall-clock (gated on core count)", parallel_ok
    )
    record.note(
        f"engine speedup vs reference: "
        f"{engine['speedup_vs_reference']:.2f}x "
        f"({engine['fast_seconds']:.3f}s vs "
        f"{engine['reference_seconds']:.3f}s)"
    )
    record.note(
        f"sweep parallel speedup: {sweep['parallel_speedup']:.2f}x "
        f"with workers={workers} on {cpus} cpu(s)"
    )

    # backend_engine_metrics raises AssertionError when any available
    # backend's outputs diverge from the fast engine's, so reaching
    # the check line proves the bit-identity contract for this run.
    backends = backend_engine_metrics(n=BACKEND_N, repeats=1)
    backend_series = Series("backend rounds*nodes/sec (ColorBidding)")
    for index, (name, timing) in enumerate(sorted(backends.items())):
        backend_series.add(index, [timing["rounds_nodes_per_sec"]])
        record.note(
            f"backend {name}: {timing['seconds']:.3f}s "
            f"({timing['speedup_vs_fast']:.2f}x vs fast) at "
            f"n={BACKEND_N}"
        )
    record.add_series(backend_series)
    record.check(
        "every available backend bit-identical to fast", True
    )
    if "vectorized" in backends:
        # Smoke floor only — the headline >= 5x criterion lives at
        # n = 10^6 in the committed baseline (repro bench --full).
        record.check(
            "vectorized backend at least keeps pace at smoke size",
            backends["vectorized"]["speedup_vs_fast"] >= 0.5,
        )
    else:
        record.note(
            "vectorized backend unavailable ([perf] extra not "
            "installed) — smoke skipped"
        )
    return record


def test_p00_engine(benchmark, record_experiment, sweep_workers):
    record = benchmark.pedantic(
        run_experiment,
        kwargs={"workers": sweep_workers},
        rounds=1,
        iterations=1,
    )
    record_experiment(record)

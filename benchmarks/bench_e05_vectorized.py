"""E5V — shattering at the paper's asymptotic scale (n = 10^6).

The E5 sweep (``bench_e05_shattering.py``) stops at n = 16000 because
the per-node engines step one Python call per vertex per round.  This
variant runs the same Theorem 10 Phase 1 workload through the
``vectorized`` backend at n = 10^6 — the regime where the
O(Δ⁴ log n) component bound actually separates from n — and checks
the shattering bound there.

The fast-engine comparison leg runs at a smaller size (minutes of wall
clock at 10^6; the committed ``BENCH_baseline.json`` records the full
n = 10^6 speedup via ``repro bench --full``), and the backend contract
makes the small-size output equality transfer: both sizes go through
the same kernel.

The observed-mode variant (**E5VO**, ``run_observed_experiment``)
repeats the n = 10^6 run with a ``MetricsObserver`` and a
``JsonlTraceObserver`` attached — exercising plane-1 batched emission
at scale — and asserts the Δ⁴ · ln n surviving-component bound from
the recorded trace via the streaming shattering profiler, a check that
previously only ran at n = 10^4.

Scale via ``REPRO_E5V_N`` (e.g. 10^7 on a large-memory host).  Without
the ``[perf]`` extra the record documents the skip instead of failing.
"""

import os
import random
import time

from repro.algorithms import ColorBiddingAlgorithm, ColorBiddingConfig
from repro.algorithms.rand_tree_coloring import BAD, reserved_colors
from repro.analysis import ExperimentRecord, Series
from repro.core import Model, available_backend_names, run_local
from repro.graphs.generators import random_tree_bounded_degree
from repro.transforms import component_size_threshold, shatter

N = int(os.environ.get("REPRO_E5V_N", "1000000"))
COMPARE_N = min(N, 100_000)
DELTA = 9
SEED = 0


def _workload(n):
    graph = random_tree_bounded_degree(
        n, DELTA, random.Random(1000 * SEED + n)
    )
    params = {
        "config": ColorBiddingConfig(),
        "main_palette": DELTA - reserved_colors(DELTA),
    }
    return graph, params


def _timed_run(graph, params, backend):
    start = time.perf_counter()
    result = run_local(
        graph,
        ColorBiddingAlgorithm(),
        Model.RAND,
        seed=SEED,
        global_params=params,
        backend=backend,
    )
    return result, time.perf_counter() - start


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E5V",
        f"Shattering at scale: vectorized Theorem 10 at n = {N}",
    )
    if "vectorized" not in available_backend_names():
        record.note(
            "vectorized backend unavailable ([perf] extra not "
            "installed) — experiment skipped"
        )
        record.check("vectorized backend ran (or was skipped)", True)
        return record

    graph, params = _workload(N)
    result, seconds = _timed_run(graph, params, "vectorized")
    outcome = shatter(graph, result.outputs, BAD)
    throughput = result.rounds * N / seconds

    series = Series(f"max bad component (Δ={DELTA})")
    series.add(N, [outcome.max_component])
    record.add_series(series)
    rate = Series("vectorized rounds*nodes/sec")
    rate.add(N, [throughput])
    record.add_series(rate)

    record.check(
        f"components within Δ⁴·log n at n={N}",
        outcome.max_component <= component_size_threshold(N, DELTA),
    )
    record.check(
        "bad set is sublinear at scale",
        len(outcome.residual) <= 0.25 * N,
    )

    small_graph, small_params = _workload(COMPARE_N)
    vec_small, vec_seconds = _timed_run(
        small_graph, small_params, "vectorized"
    )
    fast_small, fast_seconds = _timed_run(small_graph, small_params, "fast")
    record.check(
        f"vectorized bit-identical to fast at n={COMPARE_N}",
        vec_small.outputs == fast_small.outputs
        and vec_small.rounds == fast_small.rounds,
    )
    record.check(
        f"vectorized >= 3x over fast at n={COMPARE_N}",
        fast_seconds / vec_seconds >= 3.0,
    )
    record.note(
        f"n={N}: {seconds:.1f}s vectorized, {result.rounds} rounds, "
        f"{throughput:,.0f} rounds*nodes/sec, "
        f"max component {outcome.max_component}, "
        f"{len(outcome.residual)} bad"
    )
    record.note(
        f"n={COMPARE_N} comparison: fast {fast_seconds:.1f}s vs "
        f"vectorized {vec_seconds:.1f}s "
        f"({fast_seconds / vec_seconds:.1f}x); the committed "
        "BENCH_baseline.json records the full n=10^6 speedup"
    )
    return record


def run_observed_experiment() -> ExperimentRecord:
    """E5VO — the same n = 10⁶ workload, **observed**: metrics + JSONL
    trace attached for the whole run (plane-1 batched emission, no
    scalar fallback), the Δ⁴·ln n shattering bound asserted from the
    recorded trace by the streaming profiler — the check that
    previously only ran at n = 10⁴ scales."""
    import tempfile

    from repro.obs import (
        JsonlTraceObserver,
        MetricsObserver,
        aggregate_trace,
        iter_trace,
        profile_trace,
    )

    record = ExperimentRecord(
        "E5VO",
        f"Observed shattering at scale: traced vectorized Theorem 10 "
        f"at n = {N}",
    )
    if "vectorized" not in available_backend_names():
        record.note(
            "vectorized backend unavailable ([perf] extra not "
            "installed) — experiment skipped"
        )
        record.check("observed vectorized ran (or was skipped)", True)
        return record

    graph, params = _workload(N)
    metrics = MetricsObserver()
    fd, trace_path = tempfile.mkstemp(prefix="repro-e5vo-", suffix=".jsonl")
    os.close(fd)
    try:
        start = time.perf_counter()
        with JsonlTraceObserver(trace_path) as trace:
            result = run_local(
                graph,
                ColorBiddingAlgorithm(),
                Model.RAND,
                seed=SEED,
                global_params=params,
                observers=[metrics, trace],
                backend="vectorized",
            )
        seconds = time.perf_counter() - start
        throughput = result.rounds * N / seconds

        profile = profile_trace(trace_path, unresolved=BAD)
        agg = aggregate_trace(iter_trace(trace_path))
    finally:
        trace_size = os.path.getsize(trace_path)
        os.unlink(trace_path)

    rate = Series("traced vectorized rounds*nodes/sec")
    rate.add(N, [throughput])
    record.add_series(rate)
    comp = Series(f"max surviving component (Δ={DELTA})")
    comp.add(N, [profile.max_surviving_component])
    record.add_series(comp)

    record.check(
        f"profiled components within Δ⁴·ln n at n={N} "
        f"({profile.max_surviving_component} vs "
        f"{profile.paper_bound:.1f})",
        profile.max_surviving_component <= profile.paper_bound,
    )
    record.check(
        "shattering profile shape ok (halt fraction, shattered round)",
        profile.ok(),
    )
    summary = metrics.summary()
    halted = summary["metrics"]["halted_total"]["value"]
    record.check(
        "metrics observer accounted for every vertex",
        halted == N
        and summary["metrics"]["runs_succeeded_total"]["value"] == 1,
    )
    record.check(
        "trace aggregate agrees with the run",
        agg["runs"] == 1 and agg["halted_total"] == N,
    )
    record.note(
        f"n={N}: {seconds:.1f}s traced vectorized "
        f"({throughput:,.0f} rounds*nodes/sec), "
        f"{trace_size / 1e6:.0f} MB trace, "
        f"shattering round {profile.shattering_round}, "
        f"max surviving component {profile.max_surviving_component} "
        f"(bound {profile.paper_bound:.1f})"
    )
    return record


def test_e05_vectorized(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)


def test_e05_vectorized_observed(benchmark, record_experiment):
    record = benchmark.pedantic(
        run_observed_experiment, rounds=1, iterations=1
    )
    record_experiment(record)

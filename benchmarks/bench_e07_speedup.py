"""E7 — Theorems 6/8: the deterministic speedup transform.

Claim: any DetLOCAL algorithm running in f(Δ) + ε·log_Δ n rounds can be
transformed to run in O((1 + f(Δ))(log* n − log* Δ + 1)) rounds, by
shortening the IDs (Linial on the power graph) and lying to the
algorithm about n.  We build an *eligible* algorithm whose n-dependence
enters exactly through the announced ID space — Theorem 9's coloring
plus an explicit ε·log_Δ(id_space) idle schedule, the canonical shape
of an ε·log_Δ n-time algorithm — and measure it before and after the
transform: the transformed pipeline's growth must collapse from
Θ(log n) toward the log*-flat regime.
"""

import math

from repro.algorithms import delta_plus_one_coloring
from repro.algorithms.drivers import AlgorithmReport
from repro.analysis import ExperimentRecord, Series, log_base
from repro.graphs.generators import path_graph
from repro.lcl import KColoring
from repro.transforms import speedup_transform


# Δ = 2 (paths): the power graph G^D then has constant degree 2D, so
# the shortened ID space is genuinely n-free at laptop scales.  (For
# larger Δ the theorem's crossover point ℓ' < log n sits beyond
# n ~ 2^(2D·log Δ), unreachable by simulation — the transform is
# asymptotic; see EXPERIMENTS.md.)
DELTA = 2
EPSILON = 1.0
SIZES = (256, 4096, 65536)


def eligible_driver(graph, ids, id_space):
    """A (Δ+1)-coloring algorithm running in g(Δ) + ε·log_Δ 2^ℓ rounds:
    the Linial + reduction pipeline (whose n-dependence is only the
    log*-flat ID length) followed by an explicit idle schedule of
    ε·ℓ/log Δ rounds — the canonical shape of an ε·log_Δ n-time
    algorithm, with the n-dependence entering exactly through the
    announced ID space, as Theorem 6 assumes."""
    report = delta_plus_one_coloring(
        graph, ids=ids, id_space=id_space, allow_duplicate_ids=True
    )
    bits = max(1, (id_space - 1).bit_length())
    idle = math.ceil(EPSILON * bits / math.log2(DELTA))
    report.log.add_rounds("idle-schedule", idle)
    return AlgorithmReport(
        report.labeling, report.log.total_rounds, report.log
    )


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E7", "Theorem 6 speedup transform: rounds before vs after"
    )
    checker = KColoring(DELTA + 1)
    before = Series("original algorithm (f(Δ) + ε·log_Δ n)")
    after = Series("transformed algorithm A'")
    bits_series = Series("short ID bits")
    valid = True
    for n in SIZES:
        g = path_graph(n)
        id_space = 1 << max(1, (n - 1).bit_length())
        base = eligible_driver(g, list(range(n)), id_space)
        valid &= checker.is_solution(g, base.labeling)
        before.add(n, [base.rounds])
        transformed = speedup_transform(
            eligible_driver, g, f_delta=1, problem_radius=1
        )
        valid &= checker.is_solution(g, transformed.report.labeling)
        after.add(n, [transformed.report.rounds])
        bits_series.add(n, [transformed.short_id_bits])
    record.add_series(before)
    record.add_series(after)
    record.add_series(bits_series)
    record.check("all outputs valid", valid)
    before_increment = before.means[-1] - before.means[0]
    after_increment = after.means[-1] - after.means[0]
    record.check(
        "transform collapses the n-growth",
        after_increment <= 0.5 * before_increment,
    )
    record.note(
        f"increments: before +{before_increment:.0f}, "
        f"after +{after_increment:.0f}"
    )
    # At the smallest n the original ID space is already below the
    # Linial fixed point, so the first point can be smaller; what the
    # theorem promises is saturation: no growth across the tail even as
    # log n doubles.
    record.check(
        "short IDs saturate (n-free tail)",
        bits_series.means[-1] == bits_series.means[-2],
    )
    record.note(
        f"log_Δ n across the sweep: {log_base(SIZES[0], DELTA):.1f} .. "
        f"{log_base(SIZES[-1], DELTA):.1f}"
    )
    return record


def test_e07_speedup(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""E14 — the remaining survey problems: edge coloring, ruling sets,
vertex cover.

Section I's survey frames the paper; these problems complete its table
in our suite:

- (2Δ-1)-edge coloring ([20]: "much easier than maximal matching"):
  deterministic rounds must be flat in n;
- (α, α-1)-ruling sets ([18], [22]): cost scales with the power-graph
  simulation factor (α-1) but stays flat in n;
- 2-approximate vertex cover (KMW context, [26]): valid cover with the
  locally checkable 2-approximation certificate at every sweep point.
"""

import random

from repro.algorithms import (
    deterministic_ruling_set,
    edge_coloring_2delta_minus_1,
    randomized_vertex_cover,
)
from repro.algorithms.vertex_cover import (
    approximation_certificate,
    is_vertex_cover,
)
from repro.analysis import ExperimentRecord, Series
from repro.graphs.generators import random_regular_graph
from repro.lcl import EdgeColoringLCL, RulingSet

DEGREE = 4
SIZES = (128, 512, 2048)
ALPHAS = (2, 3, 4)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E14", "Survey extensions: edge coloring, ruling sets, vertex cover"
    )
    # Edge coloring: flat in n.
    edge_series = Series("(2Δ-1)-edge coloring rounds vs n")
    edge_valid = True
    for n in SIZES:
        rng = random.Random(n)
        g = random_regular_graph(n, DEGREE, rng)
        report = edge_coloring_2delta_minus_1(g)
        edge_valid &= EdgeColoringLCL(2 * DEGREE - 1).is_solution(
            g, report.labeling
        )
        edge_series.add(n, [report.rounds])
    record.add_series(edge_series)
    record.check("edge colorings valid", edge_valid)
    record.check(
        "edge coloring flat in n",
        edge_series.means[-1] <= edge_series.means[0] + 6,
    )

    # Ruling sets: cost vs alpha at fixed n.
    ruling_series = Series("det (α, α-1)-ruling set rounds vs α (n=256)")
    ruling_valid = True
    rng = random.Random(7)
    g = random_regular_graph(256, 3, rng)
    for alpha in ALPHAS:
        report = deterministic_ruling_set(g, alpha)
        ruling_valid &= RulingSet(alpha, alpha - 1).is_solution(
            g, report.labeling
        )
        ruling_series.add(alpha, [report.rounds])
    record.add_series(ruling_series)
    record.check("ruling sets valid", ruling_valid)
    record.check(
        "ruling-set cost grows with α (power-graph simulation)",
        ruling_series.means[-1] > ruling_series.means[0],
    )

    # Vertex cover: certificate at every size.
    cover_series = Series("rand 2-apx vertex cover rounds vs n")
    cover_ok = True
    for n in SIZES:
        rng = random.Random(n + 1)
        g = random_regular_graph(n, DEGREE, rng)
        report = randomized_vertex_cover(g, seed=n)
        cover_ok &= is_vertex_cover(g, report.labeling)
        cover_ok &= approximation_certificate(
            g, report.labeling, report.matching_labels
        )
        cover_series.add(n, [report.rounds])
    record.add_series(cover_series)
    record.check("covers valid with 2-apx certificate", cover_ok)
    return record


def test_e14_survey_extensions(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

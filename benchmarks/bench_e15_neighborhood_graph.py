"""E15 — Linial's ring lower bound, finitely certified.

The Ω(log* n) bound for coloring rings (which Naor extended to
RandLOCAL, making it the prototype for every bound in the paper) has a
finite core: t-round algorithms with IDs from [m] are exactly proper
colorings of the neighborhood graph B_t(m).  We compute the relevant
chromatic facts outright:

- t = 0: χ(B_0(m)) = m — no 0-round 3-coloring once m > 3;
- t = 1: a 3-coloring of B_1(6) exists (so 1 round suffices for ID
  space [6]) but B_1(7) is **not** 3-colorable — no 1-round algorithm
  can 3-color oriented rings with IDs from [7], by exhaustive search;
- cross-check: the library's Cole–Vishkin implementation, run on a ring
  with IDs from [7], indeed takes more than 1 round.

This turns the paper's oldest citation ([4]) into a machine-checked
certificate at small scale.
"""

from repro.algorithms import ColeVishkinColoring, ring_orientation_inputs
from repro.analysis import ExperimentRecord, Series
from repro.core import Model, run_local
from repro.graphs.generators import cycle_graph
from repro.lcl import KColoring
from repro.lowerbounds.neighborhood_graph import (
    neighborhood_graph,
    ring_chromatic_lower_bound,
)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E15", "Linial's neighborhood graph: finite ring lower bounds"
    )
    sizes = Series("|B_1(m)| vertices")
    for m in (4, 5, 6, 7):
        sizes.add(m, [neighborhood_graph(m, 1).num_vertices])
    record.add_series(sizes)

    record.check(
        "0 rounds: 3 colors possible iff m <= 3",
        ring_chromatic_lower_bound(3, 0, 3) is False
        and ring_chromatic_lower_bound(4, 0, 3) is True,
    )
    record.check(
        "1 round: 3-coloring algorithm exists for ID space [6]",
        ring_chromatic_lower_bound(6, 1, 3) is False,
    )
    record.check(
        "1 round: no 3-coloring algorithm for ID space [7]",
        ring_chromatic_lower_bound(7, 1, 3) is True,
    )

    # Cross-check against the implementation: CV on a 7-ring with IDs
    # 0..6 must exceed 1 round (it does not contradict the certificate).
    g = cycle_graph(7)
    inputs = ring_orientation_inputs(g)
    result = run_local(
        g,
        ColeVishkinColoring(),
        Model.DET,
        node_inputs=inputs,
        global_params={"id_space": 7},
    )
    record.check(
        "Cole-Vishkin with IDs from [7] uses > 1 round",
        result.rounds > 1,
    )
    record.check(
        "...and still produces a valid 3-coloring",
        KColoring(3).is_solution(g, result.outputs),
    )
    record.note(
        "χ(B_0(m)) = m and χ(B_1(7)) > 3 are computed by exhaustive "
        "search — Linial's lower bound as a finite certificate"
    )
    return record


def test_e15_neighborhood_graph(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

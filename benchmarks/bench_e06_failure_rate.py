"""E6F — Theorem 10's 1/n failure guarantee meets injected faults.

Claim under test: the paper's randomized Δ-coloring succeeds with
probability 1 - 1/n *in the fault-free LOCAL model*; the guarantee is
not robust to an adversarial network.  We sweep seeded fault-injection
rates (message drops) against the Theorem 10 driver on a Δ=9 complete
regular tree and record the empirical success probability: 1.0 at the
fault-free control (trials ≪ n), collapsing as the drop rate grows.
The sweep runs on the resilient harness — pass ``--workers`` to pool
it; results are bit-identical either way.

See ``docs/robustness.md`` for the fault taxonomy and the determinism
contract that makes each faulted cell exactly replayable.
"""

from repro.analysis import ExperimentRecord
from repro.faults.experiment import failure_rate_experiment


def run_experiment(workers=None):
    record = ExperimentRecord(
        "E6F",
        "Theorem 10 failure rate vs injected drop-fault rate "
        "(Δ=9 complete regular tree, n >= 10^4, 6 trials/rate)",
    )
    return failure_rate_experiment(
        n=10_000,
        delta=9,
        rates=(0.0, 0.002, 0.01, 0.05),
        trials=6,
        kind="drop",
        workers=workers,
        record=record,
    )


def test_e06_failure_rate(benchmark, record_experiment, sweep_workers):
    record = benchmark.pedantic(
        run_experiment,
        kwargs={"workers": sweep_workers},
        rounds=1,
        iterations=1,
    )
    record_experiment(record)

"""Sharded-backend worker-failure smoke test (CI; a few seconds).

Exercises the sharded backend's recovery contract across a real
SIGKILL delivered to one *shard worker* (not the parent): a
checkpointed multi-shard Luby-MIS run loses one of its forked workers
mid-round, the coordinator surfaces a ``WorkerCrashError`` naming the
dead pid, and resuming from the latest round-boundary snapshot — at
the original shard count and at a different one, snapshots being
shard-agnostic — reproduces the uninterrupted run's JSONL trace
**byte-identically**.  See ``docs/sharding.md``.

Usage: ``python benchmarks/sharded_smoke.py [outdir]`` — exits 0 on
success and prints PASS lines; any other exit is a failure.  When
``outdir`` is given, the checkpoint slots, all traces, and a
``journal.jsonl`` of the smoke's phases are left there for artifact
upload instead of a tempdir.
"""

import json
import os
import shutil
import signal
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.algorithms.drivers import driver_registry  # noqa: E402
from repro.backends.sharded import (  # noqa: E402
    active_worker_pids,
    use_shards,
)
from repro.core import use_backend  # noqa: E402
from repro.core.checkpoint import checkpointing  # noqa: E402
from repro.core.engine import observe_runs  # noqa: E402
from repro.obs import JsonlTraceObserver, MetricsObserver  # noqa: E402
from repro.obs.observer import BatchRunObserver  # noqa: E402
from repro.verify import (  # noqa: E402
    make_instance,
    run_outcome,
    subject_from_spec,
)

DRIVER = "luby-mis"
N = 400
SEED = 20160725
SHARDS = 4
RESUME_SHARDS = (4, 2)


class KillOneWorker(BatchRunObserver):
    """SIGKILL one live shard worker after ``kill_after`` batches."""

    checkpoint_capable = True

    def __init__(self, kill_after=None):
        super().__init__()
        self.kill_after = kill_after
        self.seen = 0
        self.killed = None

    def checkpoint_state(self):
        return self.seen

    def restore_checkpoint(self, state):
        self.seen = 0 if state is None else int(state)

    def on_round_batch(self, batch):
        if batch.round_index < 0:
            return
        self.seen += 1
        if self.kill_after is not None and self.seen == self.kill_after:
            pids = active_worker_pids()
            assert pids, "no live shard workers to kill"
            self.killed = pids[-1]
            os.kill(self.killed, signal.SIGKILL)


def observed(subject, instance, kill, trace_path):
    metrics = MetricsObserver()
    with open(trace_path, "w", encoding="utf-8") as sink:
        trace = JsonlTraceObserver(sink, node_steps=True)
        with observe_runs(metrics, trace, kill):
            outcome = run_outcome(subject, instance)
    return outcome, metrics.summary()


def read(path):
    with open(path, "rb") as handle:
        return handle.read()


def main(outdir):
    journal_path = os.path.join(outdir, "journal.jsonl")
    journal = open(journal_path, "w", encoding="utf-8")

    def record(phase, **detail):
        journal.write(json.dumps({"phase": phase, **detail}) + "\n")
        journal.flush()

    spec = driver_registry()[DRIVER]
    subject = subject_from_spec(spec)
    instance = make_instance(spec.make_graph, N, SEED)
    record("instance", driver=DRIVER, **instance.describe())

    counter = KillOneWorker()
    base_path = os.path.join(outdir, "baseline.trace.jsonl")
    with use_backend("sharded"), use_shards(SHARDS):
        base, base_summary = observed(
            subject, instance, counter, base_path
        )
    assert base[0] == "ok", f"baseline failed: {base}"
    assert counter.seen >= 2, "run too short to kill mid-flight"
    record("baseline", shards=SHARDS, round_batches=counter.seen)

    workdir = os.path.join(outdir, "ck")
    os.makedirs(workdir, exist_ok=True)
    kill = KillOneWorker(max(1, counter.seen // 2))
    kill_path = os.path.join(outdir, "killed.trace.jsonl")
    with use_backend("sharded"), use_shards(SHARDS), checkpointing(
        workdir, every_rounds=1
    ):
        killed, _ = observed(subject, instance, kill, kill_path)
    assert killed[0] == "error" and "WorkerCrashError" in killed[1], (
        f"SIGKILLing worker {kill.killed} did not surface a "
        f"WorkerCrashError: {killed}"
    )
    assert str(kill.killed) in killed[1], killed[1]
    record(
        "killed",
        pid=kill.killed,
        after_batches=kill.kill_after,
        error=killed[1],
    )

    partial = read(kill_path)
    for resume_shards in RESUME_SHARDS:
        tag = f"resumed-{resume_shards}"
        # Each resume leg gets a pristine copy of the interrupted
        # run's slots (a resume continues checkpointing, advancing
        # them) and the partial trace in a read-write sink: the
        # trace observer seeks to the snapshot offset and rewrites
        # the killed process's tail in place, byte-identically.
        leg_workdir = os.path.join(outdir, f"ck-{tag}")
        shutil.copytree(workdir, leg_workdir)
        resume_path = os.path.join(outdir, f"{tag}.trace.jsonl")
        with open(resume_path, "wb") as handle:
            handle.write(partial)
        metrics = MetricsObserver()
        with open(resume_path, "r+", encoding="utf-8") as sink:
            trace = JsonlTraceObserver(sink, node_steps=True)
            with use_backend("sharded"), use_shards(
                resume_shards
            ), checkpointing(
                leg_workdir, every_rounds=1, resume=True
            ), observe_runs(metrics, trace, KillOneWorker()):
                resumed = run_outcome(subject, instance)
        assert resumed == base, (
            f"{tag}: outcome diverges from baseline"
        )
        resumed_trace = read(resume_path)
        assert resumed_trace == read(base_path), (
            f"{tag}: trace bytes differ from the uninterrupted run's"
        )
        assert metrics.summary() == base_summary, (
            f"{tag}: metrics summary differs"
        )
        record(
            "resumed",
            shards=resume_shards,
            trace_bytes=len(resumed_trace),
        )
        print(
            f"PASS sharded smoke: resume at {resume_shards} shards "
            f"after SIGKILLing worker {kill.killed} is byte-identical "
            f"({len(resumed_trace)} trace bytes)"
        )
    journal.close()
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1:
        os.makedirs(sys.argv[1], exist_ok=True)
        sys.exit(main(os.path.abspath(sys.argv[1])))
    with tempfile.TemporaryDirectory() as tmp:
        sys.exit(main(tmp))

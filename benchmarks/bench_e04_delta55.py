"""E4 — Theorem 11: the Δ >= 55 randomized Δ-coloring algorithm.

Claim: for constant Δ >= 55 the three-phase algorithm Δ-colors trees in
O(log_Δ log n + log* n) rounds.  We run it on preferential-attachment
trees that realize Δ = 55 exactly, sweep n, and check validity, the
Phase-1 invariant (enforced by the driver), and the near-flat growth in
n (the round count is dominated by Δ-determined schedules).
"""

import random

from repro.algorithms.delta55 import chang_kopelowitz_pettie_coloring
from repro.analysis import ExperimentRecord, Series
from repro.graphs.generators import random_tree_preferential
from repro.lcl import KColoring

DELTA = 55
SIZES = (1000, 4000, 12000)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E4", "Theorem 11: Δ=55 randomized tree coloring, rounds vs n"
    )
    series = Series("rounds (Δ=55)")
    s_series = Series("|S| (Phase-2 residual)")
    valid = True
    delta_realized = True
    for n in SIZES:
        rng = random.Random(n)
        g = random_tree_preferential(n, DELTA, rng, seed_hub=True)
        delta_realized &= g.max_degree == DELTA
        report = chang_kopelowitz_pettie_coloring(g, seed=n)
        valid &= KColoring(DELTA).is_solution(g, report.labeling)
        series.add(n, [report.rounds])
        s_series.add(n, [report.log.stats.bad_vertices])
    record.add_series(series)
    record.add_series(s_series)
    record.check("Δ realized exactly", delta_realized)
    record.check("valid Δ-colorings", valid)
    # An iteration of Phase 1 costs Δ+3 rounds; 12x growth in n should
    # cost at most a couple of extra iterations.
    record.check(
        "rounds nearly flat in n",
        series.means[-1] <= series.means[0] + 3 * (DELTA + 3),
    )
    return record


def test_e04_delta55(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""E2 — Theorem 9: deterministic q-coloring of trees.

Claim: q-coloring trees takes O(log_q n + log* n) rounds, independent
of Δ.  We sweep n on complete Δ-regular trees for q ∈ {3, 4, 9} (with
q = Δ this is the deterministic side of the headline separation) and
check (a) validity, (b) Ω(log n) growth of the n-dependent phases
(peeling + sweep) against the gap theorem's lower side, and (c) that
larger q shrinks the number of peeling layers (the log_q n factor).
"""

from repro.algorithms import barenboim_elkin_coloring
from repro.analysis import ExperimentRecord, Series
from repro.graphs.generators import complete_regular_tree_with_size
from repro.lcl import KColoring
from repro.lowerbounds import theorem5_rounds

SIZES = (200, 2000, 20000)
QS = (3, 4, 9)


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E2", "Barenboim-Elkin q-coloring of trees: rounds vs n"
    )
    layers_at_top = {}
    for q in QS:
        series = Series(f"rounds (q=Δ={q})")
        growing = Series(f"n-dependent rounds (q={q})")
        valid = True
        above_lower_bound = True
        for n in SIZES:
            g = complete_regular_tree_with_size(q, n)
            report = barenboim_elkin_coloring(g, q)
            valid &= KColoring(q).is_solution(g, report.labeling)
            breakdown = report.breakdown
            n_dependent = breakdown["peeling"] + breakdown["layer-sweep"]
            series.add(g.num_vertices, [report.rounds])
            growing.add(g.num_vertices, [n_dependent])
            above_lower_bound &= report.rounds >= theorem5_rounds(
                g.num_vertices, q, epsilon=0.5
            )
            layers_at_top[q] = breakdown["peeling"]
        record.add_series(series)
        record.add_series(growing)
        record.check(f"valid {q}-coloring", valid)
        record.check(f"above Theorem 5 bound (q={q})", above_lower_bound)
        record.check(
            f"log-growth of n-dependent phases (q={q})",
            growing.means[-1] > growing.means[0],
        )
    record.check(
        "larger q -> fewer peeling layers (log_q n)",
        layers_at_top[QS[-1]] <= layers_at_top[QS[0]],
    )
    record.note(f"peeling layers at n~{SIZES[-1]}: {layers_at_top}")
    return record


def test_e02_be_tree(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

"""E6 — Theorem 3, executable: Det_P(n, Δ) <= Rand_P(2^(n²), Δ).

Claim: because the family 𝒢_{n,Δ} is finite, fixing a seed function
φ: ID -> random-bits turns a low-failure RandLOCAL algorithm into a
DetLOCAL algorithm that is simultaneously correct on the whole family.
We execute the search at toy scale (n = 3, 4) for Luby's MIS and
report the family sizes and how many candidate seed functions the
search needed — with Luby's failure probability far below 1/|family|,
the first few candidates succeed, exactly as the union bound predicts.
"""

from repro.algorithms import LubyMIS
from repro.analysis import ExperimentRecord, Series
from repro.lcl import MaximalIndependentSet
from repro.transforms import enumerate_family, find_good_seed_function

CASES = ((3, 2), (4, 3))


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E6", "Theorem 3 derandomization of Luby-MIS at toy scale"
    )
    problem = MaximalIndependentSet()
    family_series = Series("family size |G(n,Δ)|")
    tried_series = Series("candidate seed functions tried")
    derived_correct = True
    for n, delta in CASES:
        result = find_good_seed_function(
            lambda: LubyMIS(), problem, n, delta, max_candidates=512
        )
        family_series.add(n, [result.family_checked])
        tried_series.add(n, [result.candidates_tried])
        # Re-verify the derived deterministic algorithm on the family.
        for graph in enumerate_family(n, delta):
            run = result.run(graph)
            derived_correct &= problem.is_solution(graph, run.outputs)
    record.add_series(family_series)
    record.add_series(tried_series)
    record.check(
        "derived deterministic algorithm correct on whole family",
        derived_correct,
    )
    record.check(
        "few candidates needed (union-bound regime)",
        all(p.mean <= 16 for p in tried_series.points),
    )
    record.note(
        "the paper's N = 2^(n²) bound on the family is the same union "
        "bound driving this search"
    )
    return record


def test_e06_derandomize(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

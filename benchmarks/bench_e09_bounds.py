"""E9 — the bound sandwich: calculated lower bounds vs measured upper
bounds.

For each (problem, model) pair we compute the paper's lower-bound
formula and measure our implementation's actual rounds on matched
instances; every measurement must sit at or above its bound.  The
round-elimination chain (Lemmas 1-2) is also recomputed from first
principles and cross-checked against the closed-form Theorem 4 value.
"""

import random

from repro.algorithms import (
    barenboim_elkin_coloring,
    luby_mis,
    pettie_su_tree_coloring,
)
from repro.analysis import ExperimentRecord, Series
from repro.graphs.generators import (
    complete_regular_tree_with_size,
    random_regular_graph,
)
from repro.lcl import KColoring, MaximalIndependentSet
from repro.lowerbounds import (
    corollary2_rounds,
    kmw_lower_bound,
    max_eliminable_rounds,
    theorem4_rounds,
    theorem5_rounds,
)

SIZES = (500, 5000, 50000)
DELTA = 9


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        "E9", "Lower-bound formulas vs measured upper bounds"
    )
    sandwich_ok = True
    det_measured = Series("measured det Δ-coloring rounds")
    det_bound = Series("Theorem 5 bound")
    rand_measured = Series("measured rand Δ-coloring rounds")
    rand_bound = Series("Corollary 2 bound")
    for n in SIZES:
        g = complete_regular_tree_with_size(DELTA, n)
        det = barenboim_elkin_coloring(g, DELTA)
        KColoring(DELTA).check(g, det.labeling)
        rand = pettie_su_tree_coloring(g, seed=n)
        KColoring(DELTA).check(g, rand.labeling)
        m = g.num_vertices
        det_measured.add(m, [det.rounds])
        det_bound.add(m, [theorem5_rounds(m, DELTA)])
        rand_measured.add(m, [rand.rounds])
        rand_bound.add(m, [corollary2_rounds(m, DELTA)])
        sandwich_ok &= det.rounds >= theorem5_rounds(m, DELTA)
        sandwich_ok &= rand.rounds >= corollary2_rounds(m, DELTA)
    for series in (det_measured, det_bound, rand_measured, rand_bound):
        record.add_series(series)

    # MIS vs the KMW bound.
    mis_ok = True
    mis_measured = Series("measured Luby-MIS rounds")
    mis_bound = Series("KMW bound")
    rng = random.Random(0)
    for n in (512, 4096):
        g = random_regular_graph(n, 8, rng)
        report = luby_mis(g, seed=n)
        MaximalIndependentSet().check(g, report.labeling)
        mis_measured.add(n, [report.rounds])
        mis_bound.add(n, [kmw_lower_bound(n, 8)])
        mis_ok &= report.rounds >= kmw_lower_bound(n, 8)
    record.add_series(mis_measured)
    record.add_series(mis_bound)

    # Round-elimination chain vs the Theorem 4 closed form.
    chain = Series("rounds certified by Lemma 1-2 chain")
    closed = Series("Theorem 4 closed form (ε=1)")
    chain_consistent = True
    for exponent in (8, 32, 128):
        p = 10.0 ** (-exponent)
        t_chain = max_eliminable_rounds(p, 3)
        t_closed = theorem4_rounds(10 ** 9, 3, p)
        chain.add(exponent, [t_chain])
        closed.add(exponent, [t_closed])
        # Both grow with log(1/p); the chain (with explicit constants)
        # may certify fewer rounds but never contradicts the formula's
        # direction of growth.
        chain_consistent &= t_chain >= 0
    record.add_series(chain)
    record.add_series(closed)
    grows = chain.means[-1] > chain.means[0]

    record.check("all measurements above their lower bounds", sandwich_ok)
    record.check("MIS above the KMW bound", mis_ok)
    record.check("elimination chain well-defined", chain_consistent)
    record.check("chain length grows with log(1/p)", grows)
    return record


def test_e09_bounds(benchmark, record_experiment):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_experiment(record)

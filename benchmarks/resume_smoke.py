"""Interrupted-sweep resume smoke test (CI; ~10 s wall clock).

Exercises the checkpoint-journal contract end to end, across a real
process death: a child process runs a journaled sweep with slow cells,
the parent SIGTERMs it mid-flight, then resumes the sweep from the
journal and asserts the resumed ``Series`` is byte-identical (under
pickle) to an uninterrupted run.  See ``docs/robustness.md``.

Usage: ``python benchmarks/resume_smoke.py`` — exits 0 on success and
prints one PASS line; any other exit is a failure.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.analysis import run_sweep  # noqa: E402

XS = [1.0, 2.0, 3.0, 4.0]
SEEDS = (0, 1, 2)
NAME = "resume-smoke"
#: Journal cell lines the parent waits for before killing the child.
MIN_CHECKPOINTED = 3


def measure(x, seed):
    return x * 100 + seed


def slow_measure(x, seed):
    # Slow enough that SIGTERM lands mid-sweep, fast enough that a
    # missed signal still finishes promptly.
    time.sleep(0.2)
    return measure(x, seed)


def cell_lines(journal):
    if not os.path.exists(journal):
        return 0
    with open(journal, "r", encoding="utf-8") as handle:
        return max(0, len(handle.read().splitlines()) - 1)  # minus header


def child_main(journal):
    run_sweep(NAME, XS, slow_measure, seeds=SEEDS, journal=journal)
    return 0


def main():
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "sweep.jsonl")
        child = subprocess.Popen(
            [sys.executable, os.path.abspath(__file__), "--child", journal]
        )
        deadline = time.monotonic() + 60
        try:
            while (
                cell_lines(journal) < MIN_CHECKPOINTED
                and child.poll() is None
            ):
                if time.monotonic() > deadline:
                    raise AssertionError(
                        "child never checkpointed a cell within 60s"
                    )
                time.sleep(0.05)
            child.send_signal(signal.SIGTERM)
        finally:
            child.wait(timeout=60)

        checkpointed = cell_lines(journal)
        total = len(XS) * len(SEEDS)
        assert 0 < checkpointed, "no cells were checkpointed"
        assert checkpointed < total, (
            f"child finished all {total} cells before SIGTERM — "
            "nothing was interrupted, the smoke proves nothing"
        )

        # Resume from the journal (the fast measure returns the same
        # values; only completed-cell replay makes that legitimate).
        resumed = run_sweep(NAME, XS, measure, seeds=SEEDS, journal=journal)
        uninterrupted = run_sweep(NAME, XS, measure, seeds=SEEDS)
        assert pickle.dumps(resumed) == pickle.dumps(uninterrupted), (
            "resumed Series is not byte-identical to an uninterrupted run"
        )
        header = json.loads(
            open(journal, encoding="utf-8").readline()
        )
        assert header["schema"] == "repro.analysis.journal"
        print(
            f"PASS resume smoke: killed child after {checkpointed}/{total} "
            "cells; resumed run byte-identical to uninterrupted run"
        )
    return 0


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        sys.exit(child_main(sys.argv[2]))
    sys.exit(main())

"""Tests for full-information ball collection."""

from repro.algorithms.ball import BallCollection
from repro.core import Model, run_local
from repro.graphs.generators import cycle_graph, path_graph, star_graph


def knowledge_sizes(graph, radius, ids=None):
    def compute(ctx, vertices, edges):
        return (len(vertices), len(edges))

    result = run_local(
        graph, BallCollection(radius, compute), Model.DET, ids=ids
    )
    return result


class TestBallCollection:
    def test_radius_zero_knows_self(self):
        g = path_graph(5)
        result = knowledge_sizes(g, 0)
        assert result.rounds == 0
        assert all(out == (1, 0) for out in result.outputs)

    def test_radius_one_knows_neighbors(self):
        g = star_graph(4)
        result = knowledge_sizes(g, 1)
        assert result.rounds == 1
        # Center knows everyone and all 4 edges; leaves know center +
        # the one edge.
        assert result.outputs[0] == (5, 4)
        assert result.outputs[1] == (2, 1)

    def test_knowledge_grows_per_round(self):
        g = path_graph(9)
        center = 4
        sizes = []
        for radius in range(5):
            result = knowledge_sizes(g, radius)
            sizes.append(result.outputs[center][0])
        assert sizes == [1, 3, 5, 7, 9]

    def test_edge_knowledge_lags_one_round(self):
        # After r rounds a vertex knows edges within distance r-1 plus
        # the edges it shares; a cycle edge between two antipodal
        # vertices needs diameter+1 rounds to be known by all.
        # Odd cycle: the antipodal edge joins two vertices both at
        # distance = diameter, so it needs diameter+1 rounds to reach
        # everyone.
        g = cycle_graph(9)
        full = knowledge_sizes(g, g.diameter() + 1)
        assert all(out == (9, 9) for out in full.outputs)
        partial = knowledge_sizes(g, g.diameter())
        assert any(out != (9, 9) for out in partial.outputs)

    def test_labels_travel(self):
        g = path_graph(3)

        def compute(ctx, vertices, edges):
            return sorted(
                label for (_deg, label) in vertices.values()
            )

        result = run_local(
            g,
            BallCollection(2, compute),
            Model.DET,
            node_inputs=[{"label": f"L{v}"} for v in range(3)],
        )
        assert result.outputs[0] == ["L0", "L1", "L2"]

    def test_ids_key_knowledge(self):
        g = path_graph(4)
        ids = [10, 20, 30, 40]

        def compute(ctx, vertices, edges):
            return sorted(vertices)

        result = run_local(
            g, BallCollection(1, compute), Model.DET, ids=ids
        )
        assert result.outputs[0] == [10, 20]
        assert result.outputs[1] == [10, 20, 30]

"""Integration tests: end-to-end pipelines crossing module boundaries,
and consistency between measurements and the lower-bound calculators —
small-scale versions of the experiments in EXPERIMENTS.md."""

import random

import pytest

from repro.algorithms import (
    barenboim_elkin_coloring,
    pettie_su_tree_coloring,
)
from repro.algorithms.delta55 import chang_kopelowitz_pettie_coloring
from repro.analysis import growth_exponent_ratio, log_star
from repro.graphs import ports_coloring
from repro.graphs.generators import (
    complete_regular_tree_with_size,
    complete_tree_with_max_degree,
    high_girth_bipartite_graph,
    random_tree_bounded_degree,
)
from repro.lcl import KColoring, SinklessColoring
from repro.lowerbounds import (
    corollary2_rounds,
    theorem4_rounds,
    theorem5_rounds,
)


class TestSeparationShape:
    """The headline claim (E3 in miniature): deterministic Δ-coloring
    rounds grow with n, randomized rounds stay nearly flat."""

    DELTA = 9
    SIZES = (100, 2000, 20000)

    @pytest.fixture(scope="class")
    def measurements(self):
        det_rounds, rand_rounds = [], []
        for n in self.SIZES:
            g = complete_regular_tree_with_size(self.DELTA, n)
            det = barenboim_elkin_coloring(g, self.DELTA)
            rand = pettie_su_tree_coloring(g, seed=5)
            KColoring(self.DELTA).check(g, det.labeling)
            KColoring(self.DELTA).check(g, rand.labeling)
            det_rounds.append(det.rounds)
            rand_rounds.append(rand.rounds)
        return det_rounds, rand_rounds

    def test_det_grows(self, measurements):
        det_rounds, _ = measurements
        assert det_rounds[-1] > det_rounds[0]

    def test_rand_nearly_flat(self, measurements):
        _, rand_rounds = measurements
        assert rand_rounds[-1] <= rand_rounds[0] + 15

    def test_separation_in_increments(self, measurements):
        # The theorems separate *growth*: absolute increments over the
        # sweep must be clearly larger deterministically (Θ(log_Δ n))
        # than randomized (Θ(log_Δ log n + log* n)).
        det_rounds, rand_rounds = measurements
        det_increment = det_rounds[-1] - det_rounds[0]
        rand_increment = rand_rounds[-1] - rand_rounds[0]
        assert det_increment >= max(6, 1.8 * rand_increment)

    def test_measurements_respect_lower_bounds(self, measurements):
        det_rounds, rand_rounds = measurements
        for n, det, rand in zip(self.SIZES, det_rounds, rand_rounds):
            assert det >= theorem5_rounds(n, self.DELTA, epsilon=0.5)
            assert rand >= corollary2_rounds(n, self.DELTA, epsilon=0.5)


class TestSinklessColoringBridge:
    """Theorem 4's bridge: a proper Δ-coloring of a Δ-regular
    edge-colored graph is automatically a valid Δ-sinkless coloring."""

    def test_coloring_is_sinkless(self):
        rng = random.Random(3)
        g, edge_coloring = high_girth_bipartite_graph(60, 3, 6, rng)
        # 2-color by bipartition (proper), check the sinkless LCL.
        from repro.graphs import bipartite_sides

        left, _ = bipartite_sides(g)
        labeling = [0 if v in left else 1 for v in g.vertices()]
        problem = SinklessColoring(3)
        inputs = {"edge_colors": ports_coloring(g, edge_coloring)}
        assert problem.is_solution(g, labeling, inputs)


class TestTheorem11VsTheorem10:
    def test_both_cover_delta_16(self, rng):
        g = random_tree_bounded_degree(400, 16, rng)
        delta = g.max_degree
        a = pettie_su_tree_coloring(g, seed=1)
        b = chang_kopelowitz_pettie_coloring(g, seed=1, min_delta=delta)
        checker = KColoring(delta)
        assert checker.is_solution(g, a.labeling)
        assert checker.is_solution(g, b.labeling)


class TestRoundsVsLogStar:
    def test_linial_round_counts_track_log_star(self):
        from repro.algorithms import LinialColoring
        from repro.core import Model, run_local
        from repro.graphs.generators import path_graph

        for n in (16, 256, 65536):
            g = path_graph(n)
            result = run_local(g, LinialColoring(), Model.DET)
            assert result.rounds <= log_star(n) + 3


class TestBoundSandwich:
    """E9 in miniature: measured upper bounds must sit above calculated
    lower bounds with sane constants."""

    def test_rand_coloring_sandwich(self, rng):
        n, delta = 2000, 16
        g = random_tree_bounded_degree(n, delta, rng)
        measured = pettie_su_tree_coloring(g, seed=2).rounds
        lower = theorem4_rounds(n, delta, 1.0 / n, epsilon=1.0)
        assert measured >= lower

    def test_det_coloring_sandwich(self, rng):
        n, delta = 2000, 8
        g = complete_tree_with_max_degree(delta, n)
        measured = barenboim_elkin_coloring(g, delta).rounds
        lower = theorem5_rounds(g.num_vertices, delta)
        assert measured >= lower


class TestGrowthDiagnostics:
    def test_det_rounds_log_growth_diagnostic(self):
        sizes = [200, 2000, 20000]
        rounds = []
        for n in sizes:
            g = complete_tree_with_max_degree(6, n)
            rounds.append(barenboim_elkin_coloring(g, 6).rounds)
        # Positive per-doubling increment certifies Ω(log n)-type
        # growth; near-zero would mean we broke the gap theorem.
        assert growth_exponent_ratio(sizes, rounds) > 0.3

"""Tests for MIS and maximal matching algorithms."""

import pytest

from repro.algorithms.matching import (
    deterministic_matching,
    randomized_matching,
)
from repro.algorithms.mis import deterministic_mis, ghaffari_mis, luby_mis
from repro.core.ids import bfs_order_ids, reversed_ids, shuffled_ids
from repro.graphs import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    path_graph,
    random_regular_graph,
    random_tree_bounded_degree,
    star_graph,
)
from repro.lcl import MaximalIndependentSet, MaximalMatching

MIS = MaximalIndependentSet()
MATCHING = MaximalMatching()

FAMILIES = [
    ("path", lambda rng: path_graph(60)),
    ("cycle", lambda rng: cycle_graph(61)),
    ("star", lambda rng: star_graph(12)),
    ("clique", lambda rng: complete_graph(9)),
    ("tree", lambda rng: random_tree_bounded_degree(150, 6, rng)),
    ("regular", lambda rng: random_regular_graph(120, 5, rng)),
]


class TestLubyMIS:
    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_valid_on_families(self, name, factory, rng):
        g = factory(rng)
        report = luby_mis(g, seed=17)
        assert MIS.is_solution(g, report.labeling), name

    def test_isolated_vertices_join(self):
        g = empty_graph(5)
        report = luby_mis(g, seed=0)
        assert all(label == 1 for label in report.labeling)

    def test_round_count_logarithmic(self, rng):
        rounds = []
        for n in (64, 512, 4096):
            g = random_regular_graph(n, 4, rng)
            report = luby_mis(g, seed=5)
            rounds.append(report.rounds)
        assert rounds[-1] <= 10 * max(rounds[0], 1)

    def test_different_seeds_differ(self, cubic_graph):
        a = luby_mis(cubic_graph, seed=1)
        b = luby_mis(cubic_graph, seed=2)
        assert a.labeling != b.labeling


class TestGhaffariMIS:
    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_valid_on_families(self, name, factory, rng):
        g = factory(rng)
        report = ghaffari_mis(g, seed=31)
        assert MIS.is_solution(g, report.labeling), name

    def test_isolated_vertices_join(self):
        g = empty_graph(3)
        report = ghaffari_mis(g, seed=0)
        assert all(label == 1 for label in report.labeling)

    def test_desire_levels_bounded_rounds(self, rng):
        g = random_regular_graph(512, 8, rng)
        report = ghaffari_mis(g, seed=3)
        assert report.rounds <= 120


class TestDeterministicMIS:
    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_valid_on_families(self, name, factory, rng):
        g = factory(rng)
        report = deterministic_mis(g)
        assert MIS.is_solution(g, report.labeling), name

    def test_id_assignment_independence(self, rng):
        g = random_tree_bounded_degree(100, 5, rng)
        for ids in (
            shuffled_ids(100, rng),
            bfs_order_ids(g),
            reversed_ids(list(range(100))),
        ):
            report = deterministic_mis(g, ids=ids)
            assert MIS.is_solution(g, report.labeling)

    def test_deterministic_reproducible(self, cubic_graph):
        a = deterministic_mis(cubic_graph)
        b = deterministic_mis(cubic_graph)
        assert a.labeling == b.labeling
        assert a.rounds == b.rounds

    def test_round_breakdown(self, cubic_graph):
        report = deterministic_mis(cubic_graph)
        assert set(report.breakdown) == {"linial-coloring", "class-sweep"}
        assert report.rounds == sum(report.breakdown.values())


class TestRandomizedMatching:
    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_valid_on_families(self, name, factory, rng):
        g = factory(rng)
        report = randomized_matching(g, seed=23)
        assert MATCHING.is_solution(g, report.labeling), name

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        report = randomized_matching(g, seed=1)
        assert report.labeling == [0, 0]

    def test_isolated_vertices(self):
        g = empty_graph(4)
        report = randomized_matching(g, seed=1)
        assert report.labeling == [None] * 4


class TestDeterministicMatching:
    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_valid_on_families(self, name, factory, rng):
        g = factory(rng)
        report = deterministic_matching(g)
        assert MATCHING.is_solution(g, report.labeling), name

    def test_reproducible(self, cubic_graph):
        a = deterministic_matching(cubic_graph)
        b = deterministic_matching(cubic_graph)
        assert a.labeling == b.labeling

    def test_shuffled_ids(self, rng):
        g = random_regular_graph(80, 4, rng)
        ids = shuffled_ids(80, rng)
        report = deterministic_matching(g, ids=ids)
        assert MATCHING.is_solution(g, report.labeling)

"""Property-based validity: on seeded random instances, every shipped
algorithm's output must pass its LCL verifier.

Ported onto :mod:`repro.verify`: validity is now checked through the
per-ball certificate sweep over the driver registry (one source of
truth for which LCL and complexity bound each driver declares), and
determinism through the subsystem's outcome capture — the previous
bespoke per-driver hypothesis loops are gone.
"""

import random

import pytest

from repro.algorithms import LinialColoring, pettie_su_tree_coloring
from repro.algorithms.drivers import driver_registry
from repro.core import Model
from repro.graphs.generators import random_tree_bounded_degree
from repro.lcl import KColoring, ProperColoring
from repro.verify import (
    certify,
    make_instance,
    run_outcome,
    run_verification,
    subject_from_algorithm,
)

DRIVER_NAMES = sorted(driver_registry())


@pytest.mark.parametrize("name", DRIVER_NAMES)
def test_driver_labelings_certify_on_random_instances(name):
    """Certificate cells only: every trial's labeling passes the
    declared LCL ball-by-ball and stays within the declared bound."""
    report = run_verification(
        drivers=[name], relation_names=[], trials=3, master_seed=2024
    )
    assert report.ok, "\n".join(report.summary_lines())
    (cell,) = report.cells
    assert cell.relation == "certificate" and cell.trials >= 3


def _tree_family(cap):
    def make(n, rng):
        return random_tree_bounded_degree(max(n, 3), cap, rng)

    return make


def test_linial_always_proper_on_trees():
    subject = subject_from_algorithm(
        LinialColoring, name="linial", model=Model.DET
    )
    for seed in range(6):
        instance = make_instance(_tree_family(6), 40 + 17 * seed, seed)
        outcome = run_outcome(subject, instance)
        assert outcome[0] == "ok"
        labeling, _rounds = outcome[1]
        cert = certify(
            ProperColoring(), instance.graph, list(labeling)
        )
        assert cert.valid, cert.to_json()


def test_theorem10_always_valid_delta_12():
    """Theorem 10 on uncontrolled random trees (the registry family is
    the complete Δ-regular tree; this keeps the irregular case)."""
    for seed in range(3):
        g = random_tree_bounded_degree(
            150 + 60 * seed, 12, random.Random(seed)
        )
        if g.max_degree < 9:
            continue  # Theorem 10 needs Δ >= 9
        report = pettie_su_tree_coloring(g, seed=seed)
        cert = certify(
            KColoring(g.max_degree),
            g,
            report.labeling,
            driver="pettie-su-tree-coloring",
            rounds=report.rounds,
        )
        assert cert.valid, cert.to_json()


def test_engine_round_determinism():
    """Same DetLOCAL configuration -> identical outcome, always."""
    subject = subject_from_algorithm(
        LinialColoring, name="linial", model=Model.DET
    )
    for seed in range(4):
        instance = make_instance(_tree_family(4), 30, seed)
        assert run_outcome(subject, instance) == run_outcome(
            subject, instance
        )

"""Property-based tests: on randomly drawn instances, every algorithm's
output must pass its LCL verifier, and core invariants must hold."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    LinialColoring,
    barenboim_elkin_coloring,
    deterministic_matching,
    deterministic_mis,
    luby_mis,
    pettie_su_tree_coloring,
    randomized_matching,
)
from repro.core import Model, run_local
from repro.graphs.generators import (
    random_regular_graph,
    random_tree_bounded_degree,
)
from repro.lcl import (
    KColoring,
    MaximalIndependentSet,
    MaximalMatching,
    ProperColoring,
)

MIS = MaximalIndependentSet()
MATCHING = MaximalMatching()

COMMON = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

tree_params = st.tuples(
    st.integers(10, 300), st.integers(3, 8), st.integers(0, 2 ** 30)
)
regular_params = st.tuples(
    st.sampled_from([(20, 3), (30, 4), (40, 5), (60, 4)]),
    st.integers(0, 2 ** 30),
)


@settings(**COMMON)
@given(tree_params)
def test_linial_always_proper_on_trees(params):
    n, cap, seed = params
    g = random_tree_bounded_degree(n, cap, random.Random(seed))
    result = run_local(g, LinialColoring(), Model.DET)
    assert ProperColoring().is_solution(g, result.outputs)


@settings(**COMMON)
@given(regular_params)
def test_luby_mis_always_valid(params):
    (n, d), seed = params
    g = random_regular_graph(n, d, random.Random(seed))
    report = luby_mis(g, seed=seed)
    assert MIS.is_solution(g, report.labeling)


@settings(**COMMON)
@given(regular_params)
def test_det_mis_always_valid(params):
    (n, d), seed = params
    g = random_regular_graph(n, d, random.Random(seed))
    report = deterministic_mis(g)
    assert MIS.is_solution(g, report.labeling)


@settings(**COMMON)
@given(regular_params)
def test_randomized_matching_always_valid(params):
    (n, d), seed = params
    g = random_regular_graph(n, d, random.Random(seed))
    report = randomized_matching(g, seed=seed)
    assert MATCHING.is_solution(g, report.labeling)


@settings(**COMMON)
@given(regular_params)
def test_det_matching_always_valid(params):
    (n, d), seed = params
    g = random_regular_graph(n, d, random.Random(seed))
    report = deterministic_matching(g)
    assert MATCHING.is_solution(g, report.labeling)


@settings(**COMMON)
@given(tree_params)
def test_barenboim_elkin_always_valid(params):
    n, cap, seed = params
    g = random_tree_bounded_degree(n, cap, random.Random(seed))
    q = max(3, min(cap, g.max_degree))
    report = barenboim_elkin_coloring(g, q)
    assert KColoring(q).is_solution(g, report.labeling)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.tuples(st.integers(100, 400), st.integers(0, 2 ** 30)))
def test_theorem10_always_valid_delta_12(params):
    n, seed = params
    g = random_tree_bounded_degree(n, 12, random.Random(seed))
    if g.max_degree < 9:
        return  # Theorem 10 needs Δ >= 9; tiny trees may fall short
    report = pettie_su_tree_coloring(g, seed=seed)
    assert KColoring(g.max_degree).is_solution(g, report.labeling)


@settings(**COMMON)
@given(
    st.tuples(st.integers(5, 60), st.integers(2, 5), st.integers(0, 2 ** 30))
)
def test_engine_round_determinism(params):
    """Same DetLOCAL configuration -> identical transcript, always."""
    n, cap, seed = params
    g = random_tree_bounded_degree(max(n, 3), cap, random.Random(seed))
    a = run_local(g, LinialColoring(), Model.DET)
    b = run_local(g, LinialColoring(), Model.DET)
    assert a.outputs == b.outputs
    assert a.rounds == b.rounds

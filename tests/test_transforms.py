"""Tests for the theorem-level transformations (Theorems 3, 5, 6/8)."""

import pytest

from repro.algorithms import LubyMIS, barenboim_elkin_coloring
from repro.algorithms.rand_tree_coloring import BAD
from repro.core.errors import AlgorithmFailure
from repro.graphs.generators import (
    complete_dary_tree,
    cycle_graph,
    random_tree_bounded_degree,
)
from repro.lcl import KColoring, MaximalIndependentSet
from repro.transforms import (
    component_size_threshold,
    distance_k_sets_bound,
    enumerate_family,
    family_size,
    find_good_seed_function,
    randomized_from_deterministic,
    shatter,
    solve_shattered,
    speedup_transform,
    theorem8_budget,
    union_bound_failure,
)


def be_driver(q):
    def driver(graph, ids, id_space):
        return barenboim_elkin_coloring(graph, q, ids=ids, id_space=id_space)

    return driver


class TestDerandomization:
    def test_family_enumeration_counts(self):
        # All graphs on 3 vertices: 8; max degree 2 excludes none.
        assert family_size(3, 2) == 8
        # n=4: 64 labeled graphs, max degree 3 excludes none.
        assert family_size(4, 3) == 64
        # Degree cap actually filters.
        assert family_size(4, 1) < 64

    def test_family_members_respect_cap(self):
        for graph in enumerate_family(4, 2):
            assert graph.max_degree <= 2

    def test_enumerate_large_n_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_family(8, 3))

    def test_find_good_seed_for_luby(self):
        problem = MaximalIndependentSet()
        result = find_good_seed_function(
            lambda: LubyMIS(), problem, 4, 3, max_candidates=128
        )
        assert result.family_checked == 64
        # The certified deterministic algorithm never errs on family
        # members — spot check a few.
        for i, graph in enumerate(enumerate_family(4, 3)):
            if i % 7:
                continue
            run = result.run(graph)
            assert problem.is_solution(graph, run.outputs)

    def test_derandomized_algorithm_is_deterministic(self):
        problem = MaximalIndependentSet()
        result = find_good_seed_function(
            lambda: LubyMIS(), problem, 3, 2, max_candidates=128
        )
        g = cycle_graph(3)
        a = result.run(g)
        b = result.run(g)
        assert a.outputs == b.outputs


class TestSpeedup:
    def test_transform_preserves_correctness(self, rng):
        g = random_tree_bounded_degree(250, 4, rng)
        result = speedup_transform(be_driver(4), g, f_delta=1)
        assert KColoring(4).is_solution(g, result.report.labeling)

    def test_short_ids_are_short(self, rng):
        g = random_tree_bounded_degree(400, 4, rng)
        result = speedup_transform(be_driver(4), g, f_delta=1)
        # ℓ' = O((f + τ + r)·log Δ') bits — independent of n, far below
        # the log n bits of the original IDs.
        assert result.short_id_bits <= 40

    def test_cost_split_reported(self, rng):
        g = random_tree_bounded_degree(150, 4, rng)
        result = speedup_transform(be_driver(4), g, f_delta=2)
        assert result.collection_radius == 4 * 2 + 2 * 2 + 2 * 1
        assert result.report.rounds == result.shortening_rounds + result.base_rounds

    def test_theorem8_budget_monotone(self):
        assert theorem8_budget(1, 8, 10 ** 6) >= theorem8_budget(1, 8, 100)


class TestRandFromDet:
    def test_reduction_preserves_correctness(self, rng):
        g = random_tree_bounded_degree(250, 4, rng)
        for seed in range(5):
            try:
                result = randomized_from_deterministic(
                    be_driver(4), g, t=2, seed=seed
                )
            except AlgorithmFailure:
                continue  # distant coincidence; try another seed
            assert KColoring(4).is_solution(g, result.report.labeling)
            break
        else:
            pytest.fail("all seeds hit the distant-coincidence guard")

    def test_compression_rounds_linear_in_t(self, rng):
        g = complete_dary_tree(2, 6)
        result = randomized_from_deterministic(be_driver(3), g, t=3, seed=1)
        assert result.compression_rounds == 2 * 3 + 1

    def test_compressed_ids_shorter_than_raw(self, rng):
        g = random_tree_bounded_degree(300, 4, rng)
        result = randomized_from_deterministic(be_driver(4), g, t=2, seed=3)
        assert result.compressed_id_bits < result.raw_id_bits


class TestShattering:
    def test_shatter_partition(self, rng):
        g = random_tree_bounded_degree(100, 5, rng)
        partial = [v % 3 if v % 4 else BAD for v in g.vertices()]
        outcome = shatter(g, partial, BAD)
        assert set(outcome.residual) == {
            v for v in g.vertices() if v % 4 == 0
        }
        assert sum(outcome.component_sizes) == len(outcome.residual)
        assert outcome.max_component >= 1

    def test_shatter_empty_residual(self, small_tree):
        partial = [0] * small_tree.num_vertices
        outcome = shatter(small_tree, partial, BAD)
        assert outcome.residual == []
        assert outcome.num_components == 0

    def test_solve_shattered_completes(self, rng):
        g = random_tree_bounded_degree(200, 6, rng)
        partial = [None if v % 3 == 0 else 10 for v in g.vertices()]
        outcome = shatter(g, partial, None)
        labeling, report = solve_shattered(
            g,
            outcome,
            lambda sub: barenboim_elkin_coloring(sub, 3),
            relabel=lambda c: c,
        )
        assert all(label is not None for label in labeling)
        assert report is not None

    def test_lemma3_formula(self):
        assert distance_k_sets_bound(100, 4, 5, 1) == 4 * 100
        assert distance_k_sets_bound(10, 2, 3, 2) == 16 * 10 * 2 ** 3

    def test_component_threshold_grows_with_n(self):
        assert component_size_threshold(10 ** 6, 8) > component_size_threshold(
            10 ** 3, 8
        )

    def test_union_bound_decreases_in_s(self):
        a = union_bound_failure(1000, 8, 5, 1e-6)
        b = union_bound_failure(1000, 8, 20, 1e-6)
        assert b < a

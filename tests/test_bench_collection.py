"""Meta-tests: the benchmark suite must stay runnable as documented.

Guards against the silent-collection failure mode: ``pytest
benchmarks/`` collects nothing unless pyproject's ``python_files``
covers the ``bench_*.py`` naming convention — which once produced a
green-looking "no tests ran" run.
"""

import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).parent.parent
BENCHMARKS = REPO / "benchmarks"


def test_every_bench_module_is_collected():
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(BENCHMARKS),
            "--collect-only",
            "-q",
        ],
        capture_output=True,
        text=True,
        cwd=REPO,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout[-2000:]
    bench_files = sorted(BENCHMARKS.glob("bench_*.py"))
    assert bench_files, "no benchmark modules found"
    for path in bench_files:
        assert path.name in result.stdout, f"{path.name} not collected"


def test_every_bench_module_has_benchmark_tests():
    # At least one benchmark-fixture test per module; a module may add
    # variant tests (e.g. bench_e05_vectorized.py's observed-mode
    # "E5VO") but each must use the benchmark fixture so pedantic
    # rounds/iterations stay controlled.
    for path in sorted(BENCHMARKS.glob("bench_*.py")):
        text = path.read_text()
        tests = re.findall(r"^def (test_\w+)\(benchmark", text, re.M)
        bare = re.findall(r"^def (test_\w+)\((?!benchmark)", text, re.M)
        assert tests, (
            f"{path.name} must define at least one benchmark-fixture "
            f"test"
        )
        assert not bare, (
            f"{path.name} defines tests without the benchmark "
            f"fixture: {bare}"
        )


def test_every_bench_module_records_its_experiment():
    for path in sorted(BENCHMARKS.glob("bench_*.py")):
        text = path.read_text()
        assert "record_experiment" in text, path.name
        assert "ExperimentRecord(" in text, path.name


def test_experiment_ids_match_filenames():
    # Variant studies of one experiment number append an uppercase
    # letter to the id (bench_e06_derandomize.py -> "E6",
    # bench_e06_failure_rate.py -> "E6F"); the numeric part must still
    # match the filename either way.
    for path in sorted(BENCHMARKS.glob("bench_*.py")):
        stem = path.stem  # bench_e03_separation / bench_a01_ / bench_p00_
        match = re.match(r"bench_([aep])(\d+)_", stem)
        assert match, f"unexpected benchmark filename {path.name}"
        expected_id = f"{match.group(1).upper()}{int(match.group(2))}"
        text = path.read_text()
        assert re.search(
            rf'ExperimentRecord\(\s*"{expected_id}[A-Z]?"', text
        ), f"{path.name} does not declare experiment id {expected_id}"


def test_driver_registry_metadata_is_complete():
    """Every registered driver must declare the metadata the
    verification sweep needs — LCL problem, complexity bound, graph
    family.  Fails loudly the moment a driver lands without them, so
    ``repro verify`` never silently skips a shipped algorithm."""
    from repro.algorithms.drivers import (
        driver_registry,
        validate_registry,
    )

    validate_registry()
    missing = [
        name
        for name, spec in driver_registry().items()
        if spec.problem is None
        or spec.bound is None
        or not spec.bound_label
        or spec.make_graph is None
    ]
    assert not missing, (
        f"drivers registered without LCL/bound metadata: {missing}"
    )


def test_experiment_ids_are_unique():
    ids = {}
    for path in sorted(BENCHMARKS.glob("bench_*.py")):
        found = re.search(r'ExperimentRecord\(\s*"([AEP]\d+[A-Z]?)"',
                          path.read_text())
        assert found, f"{path.name} declares no experiment id"
        experiment_id = found.group(1)
        assert experiment_id not in ids, (
            f"{path.name} reuses id {experiment_id} "
            f"already declared by {ids[experiment_id]}"
        )
        ids[experiment_id] = path.name

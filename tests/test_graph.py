"""Tests for the port-numbered graph structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, GraphError, from_edge_list
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)


class TestConstruction:
    def test_empty(self):
        g = Graph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree == 0

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        assert g.degree(0) == 1
        assert g.endpoint(0, 0) == 1
        assert g.endpoint(1, 0) == 0

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(2, [(1, 1)])

    def test_rejects_parallel_edges(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2)])

    def test_rejects_negative_n(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_from_edge_list_infers_n(self):
        g = from_edge_list([(0, 3), (1, 2)])
        assert g.num_vertices == 4

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(0, 1), (1, 2)])
        c = Graph(3, [(0, 1), (0, 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestPorts:
    def test_reverse_port_round_trip(self):
        g = cycle_graph(7)
        for v in g.vertices():
            for p in range(g.degree(v)):
                u = g.endpoint(v, p)
                q = g.reverse_port(v, p)
                assert g.endpoint(u, q) == v
                assert g.reverse_port(u, q) == p

    def test_port_of(self):
        g = star_graph(4)
        for leaf in range(1, 5):
            p = g.port_of(0, leaf)
            assert g.endpoint(0, p) == leaf

    def test_port_of_non_neighbor_raises(self):
        g = path_graph(4)
        with pytest.raises(GraphError):
            g.port_of(0, 3)

    def test_neighbors_in_port_order(self):
        g = Graph(4, [(0, 2), (0, 1), (0, 3)])
        assert list(g.neighbors(0)) == [2, 1, 3]


class TestStructure:
    def test_degree_and_max_degree(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.max_degree == 6

    def test_is_regular(self):
        assert cycle_graph(5).is_regular(2)
        assert not star_graph(3).is_regular()
        assert complete_graph(4).is_regular(3)

    def test_connected_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]

    def test_tree_and_forest_predicates(self):
        assert path_graph(5).is_tree()
        assert not cycle_graph(5).is_tree()
        assert Graph(4, [(0, 1), (2, 3)]).is_forest()
        assert not Graph(4, [(0, 1), (2, 3)]).is_tree()

    def test_has_edge(self):
        g = path_graph(3)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)

    def test_bfs_distances(self):
        g = path_graph(6)
        dist = g.bfs_distances(0)
        assert dist == {i: i for i in range(6)}

    def test_bfs_cutoff(self):
        g = path_graph(10)
        dist = g.bfs_distances(0, cutoff=3)
        assert max(dist.values()) == 3
        assert len(dist) == 4

    def test_ball(self):
        g = cycle_graph(10)
        assert g.ball(0, 2) == [0, 1, 2, 8, 9]

    def test_diameter(self):
        assert path_graph(7).diameter() == 6
        assert cycle_graph(8).diameter() == 4
        assert hypercube_graph(4).diameter() == 4

    def test_diameter_disconnected_raises(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1)]).diameter()


class TestGirthAndCycles:
    def test_acyclic_girth_none(self):
        assert path_graph(10).girth() is None
        assert path_graph(10).shortest_cycle() is None

    def test_cycle_girth(self):
        for n in (3, 5, 12):
            assert cycle_graph(n).girth() == n

    def test_complete_graph_girth(self):
        assert complete_graph(5).girth() == 3

    def test_hypercube_girth(self):
        assert hypercube_graph(3).girth() == 4

    def test_shortest_cycle_is_cycle(self):
        g = hypercube_graph(3)
        cycle = g.shortest_cycle()
        assert len(cycle) == 4
        assert len(set(cycle)) == 4
        for i, v in enumerate(cycle):
            assert g.has_edge(v, cycle[(i + 1) % len(cycle)])

    def test_shorter_than_filter(self):
        g = cycle_graph(9)
        assert g.shortest_cycle(shorter_than=9) is None
        assert g.shortest_cycle(shorter_than=10) is not None

    def test_mixed_cycles(self):
        # A triangle and a pentagon sharing no vertices.
        edges = [(0, 1), (1, 2), (2, 0)]
        edges += [(3, 4), (4, 5), (5, 6), (6, 7), (7, 3)]
        g = Graph(8, edges)
        assert g.girth() == 3

    def test_short_cycles_batch_disjoint(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        edges += [(3, 4), (4, 5), (5, 3)]
        g = Graph(6, edges)
        batch = g.short_cycles(4)
        assert len(batch) == 2
        used = [v for cycle in batch for v in cycle]
        assert len(used) == len(set(used))


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = cycle_graph(6)
        sub, originals = g.induced_subgraph([0, 1, 2, 4])
        assert originals == [0, 1, 2, 4]
        assert sub.num_edges == 2  # (0,1), (1,2); 4 is isolated
        assert sub.num_vertices == 4

    def test_power_graph(self):
        g = path_graph(5)
        g2 = g.power_graph(2)
        assert g2.has_edge(0, 2)
        assert not g2.has_edge(0, 3)
        assert g2.num_edges == 4 + 3

    def test_power_graph_invalid(self):
        with pytest.raises(GraphError):
            path_graph(3).power_graph(0)

    def test_distance_k_graph(self):
        g = path_graph(5)
        gk = g.distance_k_graph(2)
        assert gk.has_edge(0, 2)
        assert not gk.has_edge(0, 1)


@settings(max_examples=40, deadline=None)
@given(st.integers(3, 30))
def test_cycle_graph_properties(n):
    g = cycle_graph(n)
    assert g.num_edges == n
    assert g.is_regular(2)
    assert g.is_connected()
    assert g.girth() == n


@settings(max_examples=30, deadline=None)
@given(
    st.sets(
        st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=30,
    )
)
def test_handshake_lemma(edge_set):
    edges = {(min(u, v), max(u, v)) for u, v in edge_set}
    g = Graph(15, sorted(edges))
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@settings(max_examples=30, deadline=None)
@given(
    st.sets(
        st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=25,
    )
)
def test_components_partition_vertices(edge_set):
    edges = {(min(u, v), max(u, v)) for u, v in edge_set}
    g = Graph(12, sorted(edges))
    comps = g.connected_components()
    seen = [v for comp in comps for v in comp]
    assert sorted(seen) == list(range(12))

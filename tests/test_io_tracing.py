"""Tests for graph serialization and engine tracing."""

import pytest

from repro.algorithms import LubyMIS, MISFromColoring
from repro.core import Model, run_local
from repro.graphs import Graph, is_proper_edge_coloring
from repro.graphs.generators import (
    cycle_graph,
    random_regular_bipartite_graph,
    random_tree_bounded_degree,
)
from repro.graphs.io import (
    edge_coloring_from_dict,
    graph_from_dict,
    graph_to_dict,
    labeling_from_dict,
    load_graph,
    save_graph,
)


class TestSerialization:
    def test_round_trip_structure(self, rng):
        g = random_tree_bounded_degree(80, 5, rng)
        payload = graph_to_dict(g)
        g2 = graph_from_dict(payload)
        assert g2 == g

    def test_ports_preserved(self, rng):
        g = random_tree_bounded_degree(40, 4, rng)
        g2 = graph_from_dict(graph_to_dict(g))
        for v in g.vertices():
            assert list(g.neighbors(v)) == list(g2.neighbors(v))

    def test_edge_coloring_round_trip(self, rng):
        g, coloring = random_regular_bipartite_graph(20, 3, rng)
        payload = graph_to_dict(g, edge_coloring=coloring)
        g2 = graph_from_dict(payload)
        coloring2 = edge_coloring_from_dict(payload)
        assert coloring2 == coloring
        assert is_proper_edge_coloring(g2, coloring2)

    def test_labeling_round_trip_with_tuples(self):
        g = cycle_graph(4)
        labeling = [(True, False), 3, None, (1, 2)]
        payload = graph_to_dict(g, labeling=labeling)
        assert labeling_from_dict(payload) == labeling

    def test_missing_labeling_is_none(self):
        payload = graph_to_dict(cycle_graph(3))
        assert labeling_from_dict(payload) is None

    def test_file_round_trip(self, tmp_path, rng):
        g = random_tree_bounded_degree(30, 4, rng)
        path = tmp_path / "tree.json"
        save_graph(path, g, metadata={"family": "tree"})
        payload = load_graph(path)
        assert graph_from_dict(payload) == g
        assert payload["metadata"] == {"family": "tree"}

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"format": "something-else"})


class TestTracing:
    def test_trace_disabled_by_default(self, ring):
        result = run_local(ring, LubyMIS(), Model.RAND, seed=0)
        assert result.trace == []
        assert result.work() == 0

    def test_trace_length_is_rounds(self, ring):
        result = run_local(ring, LubyMIS(), Model.RAND, seed=0, trace=True)
        assert len(result.trace) == result.rounds

    def test_active_counts_monotone(self, ring):
        result = run_local(ring, LubyMIS(), Model.RAND, seed=0, trace=True)
        actives = [t.active for t in result.trace]
        assert all(a >= b for a, b in zip(actives, actives[1:]))
        assert actives[0] == ring.num_vertices

    def test_sleeping_visible_in_awake_counts(self):
        # MISFromColoring puts every vertex to sleep until its color's
        # round: awake counts per round = size of that color class.
        g = cycle_graph(9)
        colors = [v % 3 for v in range(9)]
        result = run_local(
            g,
            MISFromColoring(),
            Model.DET,
            node_inputs=[{"color": c} for c in colors],
            global_params={"palette": 3},
            trace=True,
        )
        assert result.activity_profile() == [3, 3, 3]
        assert result.work() == 9

    def test_halted_sum_matches(self, ring):
        result = run_local(ring, LubyMIS(), Model.RAND, seed=0, trace=True)
        assert sum(t.halted for t in result.trace) == ring.num_vertices

"""Tests for Linial's neighborhood-graph machinery (fast cases; the
expensive χ(B_1(7)) > 3 certificate runs in bench E15)."""

import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.lowerbounds.neighborhood_graph import (
    is_k_colorable,
    neighborhood_graph,
    ring_chromatic_lower_bound,
    smallest_hard_id_space,
)


class TestIsKColorable:
    def test_bipartite(self):
        assert is_k_colorable(path_graph(10), 2) is True

    def test_odd_cycle(self):
        assert is_k_colorable(cycle_graph(5), 2) is False
        assert is_k_colorable(cycle_graph(5), 3) is True

    def test_clique(self):
        assert is_k_colorable(complete_graph(5), 4) is False
        assert is_k_colorable(complete_graph(5), 5) is True

    def test_empty_graph(self):
        from repro.graphs import Graph

        assert is_k_colorable(Graph(0, []), 1) is True

    def test_budget_returns_none(self):
        g = neighborhood_graph(7, 1)
        assert is_k_colorable(g, 3, node_limit=50) is None


class TestNeighborhoodGraph:
    def test_b0_is_complete(self):
        g = neighborhood_graph(4, 0)
        assert g.num_vertices == 4
        assert g.num_edges == 6  # K4

    def test_b1_sizes(self):
        g = neighborhood_graph(5, 1)
        assert g.num_vertices == 5 * 4 * 3
        # Each view (a,b,c) connects forward to (b,c,d) for d not in
        # {a,b,c}: out-degree m-3 = 2; undirected edges = 60*2/2... the
        # forward relation is antisymmetric here, so m_edges = 60*2/...
        assert g.num_edges == 120

    def test_m_too_small_rejected(self):
        with pytest.raises(ValueError):
            neighborhood_graph(3, 1)

    def test_zero_round_threshold(self):
        # χ(B_0(m)) = m: 3 colors work iff m <= 3.
        assert ring_chromatic_lower_bound(3, 0, 3) is False
        assert ring_chromatic_lower_bound(4, 0, 3) is True

    def test_one_round_easy_side(self):
        # Algorithms exist (B_1 is 3-colorable) for small ID spaces.
        for m in (4, 5, 6):
            assert ring_chromatic_lower_bound(m, 1, 3) is False

    def test_smallest_hard_id_space_zero_rounds(self):
        assert smallest_hard_id_space(0, 3, m_max=6) == 4
        assert smallest_hard_id_space(0, 5, m_max=5) is None

"""Failure-injection tests: the library must *detect and report*
broken configurations and unlucky randomness, never silently emit
invalid output."""

import pytest

from repro.algorithms import ColorBiddingAlgorithm, ColorBiddingConfig
from repro.algorithms.delta55 import _random_ids
from repro.algorithms.rand_tree_coloring import (
    BAD,
    pettie_su_tree_coloring,
    reserved_colors,
)
from repro.core import (
    AlgorithmFailure,
    DuplicateIDError,
    Model,
    SimulationError,
    SyncAlgorithm,
    run_local,
)
from repro.core.errors import VerificationError
from repro.graphs import Graph, GraphError
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_tree_bounded_degree,
)
from repro.lcl import KColoring
from repro.transforms import find_good_seed_function
from repro.lcl import MaximalIndependentSet


class AlwaysFailing(SyncAlgorithm):
    def setup(self, ctx):
        ctx.publish(None)

    def step(self, ctx, inbox):
        ctx.fail("injected")


class NeverTerminating(SyncAlgorithm):
    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.publish(ctx.now)


class TestEngineGuards:
    def test_failure_reported_not_raised(self, ring):
        result = run_local(ring, AlwaysFailing(), Model.RAND, seed=0)
        assert not result.ok
        assert all(r == "injected" for r in result.failures.values())
        assert all(out is None for out in result.outputs)

    def test_nontermination_detected(self, ring):
        with pytest.raises(SimulationError):
            run_local(ring, NeverTerminating(), Model.DET, max_rounds=25)

    def test_duplicate_ids_blocked(self, ring):
        with pytest.raises(DuplicateIDError):
            run_local(ring, AlwaysFailing(), Model.DET, ids=[1] * 48)


class TestVerifierHonesty:
    def test_checker_rejects_corrupted_output(self, rng):
        from repro.graphs.generators import random_tree_preferential

        g = random_tree_preferential(300, 12, rng, seed_hub=True)
        report = pettie_su_tree_coloring(g, seed=1)
        corrupted = list(report.labeling)
        # Copy a neighbor's color onto a vertex.
        victim = next(
            v for v in g.vertices() if g.degree(v) >= 1
        )
        corrupted[victim] = corrupted[g.neighbors(victim)[0]]
        with pytest.raises(VerificationError):
            KColoring(g.max_degree).check(g, corrupted)


class TestRandomizedFailurePaths:
    def test_phase1_with_hostile_config_marks_bad_not_wrong(self, rng):
        """A palette guard so strict that many vertices go bad must
        never produce an improper partial coloring."""
        g = random_tree_bounded_degree(300, 12, rng)
        config = ColorBiddingConfig(palette_guard=1.05)
        result = run_local(
            g,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=4,
            global_params={
                "config": config,
                "main_palette": 12 - reserved_colors(12),
            },
        )
        outputs = result.outputs
        assert any(out == BAD for out in outputs)  # hostile config bites
        for v in g.vertices():
            if outputs[v] == BAD:
                continue
            for u in g.neighbors(v):
                assert outputs[u] == BAD or outputs[u] != outputs[v]

    def test_random_id_collision_detected(self):
        g = path_graph(40)

        class TinyIdSpace:
            """Masquerades as a graph with a huge vertex count so the
            helper draws too-few bits?  Simpler: call the helper with a
            seed known to collide by monkeypatching bits."""

        # Directly exercise the collision check: 40 IDs from 2 bits
        # must collide.
        import random as _random

        master = _random.Random(0)
        ids = [master.getrandbits(2) for _ in range(40)]
        assert len(set(ids)) < 40
        from repro.core.ids import check_unique_ids

        with pytest.raises(DuplicateIDError):
            check_unique_ids(ids)
        del TinyIdSpace, g

    def test_derandomization_gives_up_gracefully(self):
        """An algorithm with huge failure probability cannot pass the
        union bound; the search must raise, not loop forever."""

        class CoinFlipMIS(SyncAlgorithm):
            name = "coin-flip"

            def setup(self, ctx):
                # Nonsense labeling: in the MIS iff a fair coin lands
                # heads.  Fails on most graphs for most seeds.
                ctx.halt(1 if ctx.random.random() < 0.5 else 0)

            def step(self, ctx, inbox):
                pass

        with pytest.raises(LookupError):
            find_good_seed_function(
                lambda: CoinFlipMIS(),
                MaximalIndependentSet(),
                4,
                3,
                max_candidates=8,
            )


class TestPhase3FailurePath:
    def test_greedy_recolor_reports_palette_exhaustion(self):
        """If the Phase-3 invariant were false, the vertex must declare
        failure — never emit an improper color."""
        from repro.algorithms.delta55 import GreedyRecolorByClass
        from repro.graphs.generators import star_graph

        g = star_graph(3)
        # Palette of size 1; the center (class 0, uncolored) faces a
        # neighbor already holding the only color.
        inputs = [
            {"color": None, "klass": 0},
            {"color": 0, "klass": None},
            {"color": None, "klass": None},
            {"color": None, "klass": None},
        ]
        result = run_local(
            g,
            GreedyRecolorByClass(),
            Model.RAND,
            seed=0,
            node_inputs=inputs,
            global_params={"palette": 1},
        )
        assert 0 in result.failures
        assert "invariant" in result.failures[0]


class TestStructuralGuards:
    def test_sinkless_on_tree_rejected(self):
        from repro.algorithms import canonical_sinkless_orientation

        with pytest.raises(GraphError):
            canonical_sinkless_orientation(4, [(0, 1), (1, 2), (2, 3)])

    def test_theorem10_needs_big_delta(self):
        g = cycle_graph(30)
        with pytest.raises(ValueError):
            pettie_su_tree_coloring(g, seed=0)

    def test_random_ids_helper_unique(self):
        g = path_graph(500)
        ids = _random_ids(g, 7)
        assert len(set(ids)) == 500

    def test_graph_rejects_corrupt_edges(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (0, 1)])

"""Tests for edge-coloring construction and validation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    GraphError,
    bipartite_regular_edge_coloring,
    bipartite_sides,
    edge_key,
    is_proper_edge_coloring,
    misra_gries_edge_coloring,
    num_edge_colors,
    ports_coloring,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    random_regular_bipartite_graph,
    random_regular_graph,
    random_tree_bounded_degree,
    star_graph,
)


class TestValidation:
    def test_edge_key_canonical(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)

    def test_proper_accepts(self):
        g = path_graph(3)
        coloring = {(0, 1): 0, (1, 2): 1}
        assert is_proper_edge_coloring(g, coloring)

    def test_rejects_conflict(self):
        g = path_graph(3)
        coloring = {(0, 1): 0, (1, 2): 0}
        assert not is_proper_edge_coloring(g, coloring)

    def test_rejects_missing_edge(self):
        g = path_graph(3)
        assert not is_proper_edge_coloring(g, {(0, 1): 0})

    def test_num_edge_colors(self):
        assert num_edge_colors({(0, 1): 0, (1, 2): 5}) == 2

    def test_ports_coloring_view(self):
        g = star_graph(3)
        coloring = {(0, 1): 2, (0, 2): 0, (0, 3): 1}
        view = ports_coloring(g, coloring)
        assert view[0] == [2, 0, 1]
        assert view[1] == [2]


class TestMisraGries:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: path_graph(10),
            lambda rng: cycle_graph(9),
            lambda rng: star_graph(6),
            lambda rng: complete_graph(6),
            lambda rng: complete_graph(7),
            lambda rng: hypercube_graph(3),
            lambda rng: random_regular_graph(30, 5, rng),
            lambda rng: random_tree_bounded_degree(80, 6, rng),
        ],
    )
    def test_proper_and_within_vizing(self, factory, rng):
        g = factory(rng)
        coloring = misra_gries_edge_coloring(g)
        assert is_proper_edge_coloring(g, coloring)
        assert num_edge_colors(coloring) <= g.max_degree + 1

    def test_empty_graph(self):
        g = Graph(3, [])
        assert misra_gries_edge_coloring(g) == {}


class TestBipartite:
    def test_sides_of_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        left, right = bipartite_sides(g)
        assert {len(left), len(right)} == {2, 3}

    def test_sides_of_odd_cycle(self):
        assert bipartite_sides(cycle_graph(5)) is None

    def test_koenig_coloring_regular(self, rng):
        g, _ = random_regular_bipartite_graph(25, 4, rng)
        coloring = bipartite_regular_edge_coloring(g)
        assert is_proper_edge_coloring(g, coloring)
        assert num_edge_colors(coloring) == 4

    def test_koenig_rejects_nonbipartite(self):
        with pytest.raises(GraphError):
            bipartite_regular_edge_coloring(cycle_graph(5))

    def test_koenig_rejects_irregular(self):
        with pytest.raises(GraphError):
            bipartite_regular_edge_coloring(star_graph(3))

    def test_hypercube_coloring(self):
        g = hypercube_graph(3)
        coloring = bipartite_regular_edge_coloring(g)
        assert is_proper_edge_coloring(g, coloring)
        assert num_edge_colors(coloring) == 3


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 40), st.integers(2, 6), st.integers(0, 2 ** 30))
def test_misra_gries_on_random_trees(n, cap, seed):
    rng = random.Random(seed)
    g = random_tree_bounded_degree(max(n, 2), cap, rng)
    coloring = misra_gries_edge_coloring(g)
    assert is_proper_edge_coloring(g, coloring)
    # Trees are class 1: Δ colors always suffice — a stronger check
    # that the fan/rotation logic is right, not just Vizing's bound.
    assert num_edge_colors(coloring) <= g.max_degree + 1


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 20), st.integers(2, 5), st.integers(0, 2 ** 30))
def test_permutation_model_coloring(half, degree, seed):
    rng = random.Random(seed)
    degree = min(degree, half)
    g, coloring = random_regular_bipartite_graph(half, degree, rng)
    assert is_proper_edge_coloring(g, coloring)
    assert num_edge_colors(coloring) == degree

"""Engine backends vs reference engine: observable equivalence.

Every registered backend of :func:`repro.core.run_local` — the fast
per-node engine (incremental snapshots, CSR inbox delivery, wake
buckets) and the numpy ``vectorized`` engine (whole-round kernels) —
must be indistinguishable from the kept-simple
:func:`repro.core.run_local_reference` (full snapshot and full scan
every round).  This suite pins that down two ways:

- direct ``run_local`` calls with ``trace=True`` on synthetic
  algorithms exercising the optimized paths (sleep buckets, partial
  publishes, failures, max_rounds), asserting full ``RunResult``
  equality — outputs, rounds, messages, failures, and trace;
- driver-level comparisons running every shipped algorithm family
  (coloring, MIS, matching, sinkless, Δ⁵⁵, decomposition) on fixed
  seeds, once per registered backend and once under
  :func:`use_reference_engine`, asserting identical labelings, round
  counts, and phase logs.

Both legs parameterize over the backend registry: registering a new
backend automatically subjects it to the whole suite.  Backends whose
extras are missing (``vectorized`` without numpy) are *skipped*, never
failed — the core suite stays green on a bare install.
"""

import multiprocessing
import random

import pytest

from repro.algorithms import (
    AlgorithmReport,
    barenboim_elkin_coloring,
    chang_kopelowitz_pettie_coloring,
    delta_plus_one_coloring,
    deterministic_matching,
    deterministic_mis,
    deterministic_sinkless_orientation,
    luby_mis,
    mpx_decomposition,
    pettie_su_tree_coloring,
    random_sinkless_orientation,
    randomized_matching,
)
from repro.algorithms.drivers import driver_registry
from repro.core import (
    Model,
    SyncAlgorithm,
    available_backend_names,
    backend_names,
    run_local,
    run_local_reference,
    use_backend,
    use_reference_engine,
)
from repro.graphs.generators import (
    complete_regular_tree_with_size,
    cycle_graph,
    random_regular_graph,
    random_tree_prufer,
    ring_of_cycles,
)


def backend_params():
    """Every registered non-reference backend, with unavailable ones
    (missing extras, e.g. numpy) marked skip rather than fail."""
    available = set(available_backend_names())
    return [
        name
        if name in available
        else pytest.param(
            name,
            marks=pytest.mark.skip(
                reason=f"backend {name!r} unavailable "
                f"(optional extra not installed)"
            ),
        )
        for name in backend_names()
        if name != "reference"
    ]


CANDIDATE_BACKENDS = backend_params()


def assert_results_identical(fast, reference):
    """Full RunResult equality: outputs, rounds, messages, failures,
    trace (RoundTrace dataclasses compare field-wise)."""
    assert fast.outputs == reference.outputs
    assert fast.rounds == reference.rounds
    assert fast.messages == reference.messages
    assert fast.failures == reference.failures
    assert fast.trace == reference.trace


class _EventRecorder:
    """Minimal observer capturing every event as a comparable tuple —
    extends the equivalence contract to the telemetry stream."""

    def __init__(self):
        self.events = []

    def on_run_start(self, meta):
        self.events.append(("run_start", meta.algorithm, meta.n))

    def on_round_start(self, round_index, active):
        self.events.append(("round_start", round_index, active))

    def on_node_step(self, round_index, vertex, ctx):
        self.events.append(("step", round_index, vertex))

    def on_publish(self, round_index, vertex, value):
        self.events.append(("publish", round_index, vertex, value))

    def on_halt(self, round_index, vertex, output):
        self.events.append(("halt", round_index, vertex, output))

    def on_failure(self, round_index, vertex, reason):
        self.events.append(("failure", round_index, vertex, reason))

    def on_round_end(self, round_index, awake, halted, messages):
        self.events.append(
            ("round_end", round_index, awake, halted, messages)
        )

    def on_run_end(self, result):
        self.events.append(("run_end", result.rounds))


def run_both(graph, algorithm_factory, model, backend="fast", **kwargs):
    """Run once on ``backend`` and once on the reference engine,
    asserting full result *and* observer-event-stream equality."""
    fast_rec, ref_rec = _EventRecorder(), _EventRecorder()
    fast = run_local(
        graph, algorithm_factory(), model, trace=True,
        observers=[fast_rec], backend=backend, **kwargs
    )
    reference = run_local_reference(
        graph, algorithm_factory(), model, trace=True,
        observers=[ref_rec], **kwargs
    )
    assert_results_identical(fast, reference)
    assert fast_rec.events == ref_rec.events
    return fast


# ----------------------------------------------------------------------
# Synthetic algorithms targeting the optimized code paths
# ----------------------------------------------------------------------
class StaggeredSleeper(SyncAlgorithm):
    """Classes wake at different rounds — exercises wake buckets and
    the bulk round-skip (some rounds have zero awake vertices)."""

    name = "staggered-sleeper"

    def setup(self, ctx):
        ctx.publish(("t", ctx.input["klass"]))
        ctx.sleep_until(ctx.input["klass"])

    def step(self, ctx, inbox):
        ctx.halt(sum(1 for m in inbox if m is not None))


class RepeatSleeper(SyncAlgorithm):
    """Re-parks itself from inside step — a vertex passes through the
    wake buckets several times before halting."""

    name = "repeat-sleeper"

    def setup(self, ctx):
        ctx.publish(0)
        ctx.sleep_until(ctx.input["klass"])

    def step(self, ctx, inbox):
        count = ctx.input.get("hops", 0) + ctx.now
        ctx.publish(ctx.now)
        if ctx.now < 3 * (ctx.input["klass"] + 1):
            ctx.sleep_until(ctx.now + ctx.input["klass"] + 2)
        else:
            ctx.halt(("done", count, tuple(inbox)))


class PartialPublisher(SyncAlgorithm):
    """Only even vertices republish each round — exercises the dirty
    commit pass (most visible values are stale-but-valid)."""

    name = "partial-publisher"

    def setup(self, ctx):
        ctx.publish(("init", ctx.id))

    def step(self, ctx, inbox):
        if ctx.id % 2 == 0:
            ctx.publish(("round", ctx.now, ctx.id))
        if ctx.now >= 4:
            ctx.halt(tuple(inbox))


class FlakyHalter(SyncAlgorithm):
    """Some vertices fail, some halt, at staggered rounds — exercises
    the failure bookkeeping and per-round halted counts."""

    name = "flaky-halter"

    def setup(self, ctx):
        ctx.publish(ctx.id)

    def step(self, ctx, inbox):
        if ctx.id % 5 == 3 and ctx.now == 1 + ctx.id % 3:
            ctx.fail(f"planned failure at {ctx.now}")
        elif ctx.now >= 2 + ctx.id % 4:
            ctx.halt(len([m for m in inbox if m is not None]))
        else:
            ctx.publish((ctx.id, ctx.now))


class NeverHalts(SyncAlgorithm):
    """Runs into the max_rounds guard."""

    name = "never-halts"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.publish(ctx.now)


class RandomTalker(SyncAlgorithm):
    """RandLOCAL: per-vertex RNG streams must line up across engines."""

    name = "random-talker"

    def setup(self, ctx):
        ctx.publish(ctx.random.random())

    def step(self, ctx, inbox):
        draw = ctx.random.random()
        if draw < 0.3:
            ctx.halt((round(draw, 6), ctx.now))
        else:
            ctx.publish(draw)


@pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
class TestSyntheticEquivalence:
    def test_staggered_sleep_with_bulk_skips(self, backend):
        graph = cycle_graph(60)
        inputs = [{"klass": (v * 7) % 23 + (v % 3) * 40} for v in range(60)]
        result = run_both(
            graph, StaggeredSleeper, Model.DET, backend=backend,
            node_inputs=inputs,
        )
        assert result.rounds == max(i["klass"] for i in inputs) + 1

    def test_bulk_skipped_span_trace_pinned(self, backend):
        """Explicit expected trace for a run with a bulk-skipped span:
        the fast engine must synthesize per-round entries (and observer
        round events) identical to the reference engine's full scan."""
        from repro.core.engine import RoundTrace

        graph = cycle_graph(8)
        inputs = [{"klass": 0 if v % 2 == 0 else 5} for v in range(8)]
        rec = _EventRecorder()
        result = run_local(
            graph, StaggeredSleeper(), Model.DET, backend=backend,
            node_inputs=inputs, trace=True, observers=[rec],
        )
        expected = [RoundTrace(active=8, awake=4, halted=4)]
        expected += [
            RoundTrace(active=4, awake=0, halted=0) for _ in range(4)
        ]
        expected.append(RoundTrace(active=4, awake=4, halted=4))
        assert result.trace == expected

        # The synthesized observer events for the skipped span mirror
        # the trace: parked vertices counted active, nothing stepping.
        m = 2 * graph.num_edges
        for r in range(1, 5):
            assert ("round_start", r, 4) in rec.events
            assert ("round_end", r, 0, 0, m) in rec.events
        assert not any(
            e[0] == "step" and 1 <= e[1] <= 4 for e in rec.events
        )
        # And the reference engine agrees event-for-event.
        run_both(
            graph, StaggeredSleeper, Model.DET, backend=backend,
            node_inputs=inputs,
        )

    def test_repeated_sleep_cycles(self, backend):
        graph = ring_of_cycles(4, 5)
        inputs = [
            {"klass": v % 6, "hops": v} for v in range(graph.num_vertices)
        ]
        run_both(
            graph, RepeatSleeper, Model.DET, backend=backend,
            node_inputs=inputs,
        )

    def test_partial_publish_dirty_commit(self, backend):
        run_both(
            cycle_graph(31), PartialPublisher, Model.DET, backend=backend
        )

    def test_failures_and_staggered_halts(self, backend):
        result = run_both(
            cycle_graph(40), FlakyHalter, Model.DET, backend=backend
        )
        assert result.failures  # the scenario really exercises failures

    def test_max_rounds_guard(self, backend):
        from repro.core import SimulationError

        graph = cycle_graph(10)
        with pytest.raises(SimulationError, match="exceeded 12"):
            run_local(
                graph, NeverHalts(), Model.DET, max_rounds=12,
                backend=backend,
            )
        with pytest.raises(SimulationError, match="exceeded 12"):
            run_local_reference(
                graph, NeverHalts(), Model.DET, max_rounds=12
            )

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_randomized_streams_match(self, seed, backend):
        run_both(
            cycle_graph(50), RandomTalker, Model.RAND, backend=backend,
            seed=seed,
        )

    def test_sleep_past_max_rounds_still_raises(self, backend):
        class FarSleeper(SyncAlgorithm):
            name = "far-sleeper"

            def setup(self, ctx):
                ctx.publish(0)
                ctx.sleep_until(10_000)

            def step(self, ctx, inbox):
                ctx.halt(0)

        from repro.core import SimulationError

        with pytest.raises(SimulationError, match="exceeded 50"):
            run_local(
                cycle_graph(6),
                FarSleeper(),
                Model.DET,
                max_rounds=50,
                backend=backend,
            )
        with pytest.raises(SimulationError, match="exceeded 50"):
            run_local_reference(
                cycle_graph(6),
                FarSleeper(),
                Model.DET,
                max_rounds=50,
            )


# ----------------------------------------------------------------------
# Every shipped algorithm family, fast vs reference, fixed seeds
# ----------------------------------------------------------------------
def _phases(report: AlgorithmReport):
    return [(p.name, p.rounds, p.messages) for p in report.log.phases]


def assert_reports_identical(fast, reference):
    assert fast.labeling == reference.labeling
    assert fast.rounds == reference.rounds
    assert _phases(fast) == _phases(reference)


def _sinkless_graph():
    from repro.graphs.generators import circulant_graph

    # Connected, min degree 3: every component has a cycle and the
    # deterministic driver's diameter-based radius is defined.
    return circulant_graph(18, [1, 2])


DRIVERS = {
    "delta55-coloring": lambda: chang_kopelowitz_pettie_coloring(
        complete_regular_tree_with_size(7, 120), seed=3, min_delta=7
    ),
    "pettie-su-tree-coloring": lambda: pettie_su_tree_coloring(
        complete_regular_tree_with_size(9, 200), seed=1
    ),
    "barenboim-elkin-coloring": lambda: barenboim_elkin_coloring(
        random_tree_prufer(90, random.Random(5)), 6
    ),
    "delta-plus-one-coloring": lambda: delta_plus_one_coloring(
        random_regular_graph(48, 4, random.Random(2))
    ),
    "luby-mis": lambda: luby_mis(
        random_regular_graph(60, 4, random.Random(3)), seed=7
    ),
    "deterministic-mis": lambda: deterministic_mis(
        random_regular_graph(60, 4, random.Random(3))
    ),
    "randomized-matching": lambda: randomized_matching(
        random_regular_graph(40, 3, random.Random(4)), seed=11
    ),
    "deterministic-matching": lambda: deterministic_matching(
        random_regular_graph(40, 3, random.Random(4))
    ),
    "random-sinkless": lambda: random_sinkless_orientation(
        _sinkless_graph(), seed=5
    )[0],
    "deterministic-sinkless": lambda: deterministic_sinkless_orientation(
        _sinkless_graph()
    ),
}


#: Reference-engine reports are the (slow) shared oracle — computed
#: once per driver, compared against every candidate backend.
_REFERENCE_REPORTS = {}


def _reference_report(name):
    if name not in _REFERENCE_REPORTS:
        with use_reference_engine():
            _REFERENCE_REPORTS[name] = DRIVERS[name]()
    return _REFERENCE_REPORTS[name]


@pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_shipped_driver_matches_reference_engine(name, backend):
    """Each driver (possibly multi-phase) must produce byte-identical
    reports whichever registered backend its internal run_local calls
    hit — including backends its phases only reach ambiently."""
    with use_backend(backend):
        candidate = DRIVERS[name]()
    assert_reports_identical(candidate, _reference_report(name))


@pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
def test_mpx_decomposition_matches_reference_engine(backend):
    graph = random_regular_graph(64, 4, random.Random(9))
    with use_backend(backend):
        candidate = mpx_decomposition(graph, beta=0.4, seed=6)
    with use_reference_engine():
        reference = mpx_decomposition(graph, beta=0.4, seed=6)
    assert candidate.assignment == reference.assignment
    assert candidate.distances == reference.distances
    assert candidate.rounds == reference.rounds


# ----------------------------------------------------------------------
# The sharded round loop proper (observer-free, so no fallback)
# ----------------------------------------------------------------------
requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded backend needs the fork start method",
)


@requires_fork
@pytest.mark.parametrize("count", [1, 3])
class TestShardedSyntheticEquivalence:
    """The synthetic path-coverage algorithms again, but on the
    sharded backend's *native* round loop: no observers are attached
    (a scalar observer would trigger its documented fallback to the
    fast engine), and full RunResult equality against the reference
    engine is asserted at a degenerate and a boundary-heavy shard
    count."""

    def run_sharded(self, graph, factory, model, count, **kwargs):
        from repro.backends.sharded import use_shards

        with use_shards(count):
            candidate = run_local(
                graph, factory(), model, trace=True,
                backend="sharded", **kwargs
            )
        reference = run_local_reference(
            graph, factory(), model, trace=True, **kwargs
        )
        assert_results_identical(candidate, reference)
        return candidate

    def test_staggered_sleep_with_bulk_skips(self, count):
        graph = cycle_graph(60)
        inputs = [{"klass": (v * 7) % 23 + (v % 3) * 40} for v in range(60)]
        self.run_sharded(
            graph, StaggeredSleeper, Model.DET, count, node_inputs=inputs
        )

    def test_repeated_sleep_cycles(self, count):
        graph = ring_of_cycles(4, 5)
        inputs = [
            {"klass": v % 6, "hops": v} for v in range(graph.num_vertices)
        ]
        self.run_sharded(
            graph, RepeatSleeper, Model.DET, count, node_inputs=inputs
        )

    def test_partial_publish_dirty_commit(self, count):
        self.run_sharded(
            cycle_graph(31), PartialPublisher, Model.DET, count
        )

    def test_failures_and_staggered_halts(self, count):
        result = self.run_sharded(
            cycle_graph(40), FlakyHalter, Model.DET, count
        )
        assert result.failures

    def test_randomized_streams_match(self, count):
        self.run_sharded(
            cycle_graph(50), RandomTalker, Model.RAND, count, seed=7
        )

    def test_max_rounds_guard(self, count):
        from repro.backends.sharded import use_shards
        from repro.core import SimulationError

        with use_shards(count):
            with pytest.raises(SimulationError, match="exceeded 12"):
                run_local(
                    cycle_graph(10), NeverHalts(), Model.DET,
                    max_rounds=12, backend="sharded",
                )


# ----------------------------------------------------------------------
# Equivalence under an active adversary (repro.verify relation)
# ----------------------------------------------------------------------
class TestFaultedEquivalence:
    """The equivalence contract must also hold under a nonzero
    ``FaultPlan``: the fault-determinism relation runs each subject
    twice on the fast engine and once on the reference engine under the
    identical plan (drops + corruption + round budget) and demands
    bit-identical outcomes — including identical failures when the
    adversary wins.  ``test_faults.py`` pins hand-picked plans; this
    sweeps every shipped driver through the shared relation."""

    @pytest.mark.parametrize("name", sorted(driver_registry()))
    def test_shipped_driver_fault_plan_determinism(self, name):
        from repro.algorithms.drivers import get_driver
        from repro.verify import (
            FaultPlanDeterminism,
            make_instance,
            subject_from_spec,
        )

        spec = get_driver(name)
        relation = FaultPlanDeterminism()
        subject = subject_from_spec(spec)
        for seed in (0, 1):
            instance = make_instance(
                spec.make_graph, spec.quick_n, seed
            )
            assert not relation.plan_for(instance).is_noop
            assert relation.check(subject, instance) is None

    def test_bare_randomized_subject_under_faults(self):
        from repro.verify import (
            FaultPlanDeterminism,
            make_instance,
            subject_from_algorithm,
        )

        subject = subject_from_algorithm(
            RandomTalker,
            name="random-talker",
            model=Model.RAND,
            max_rounds=600,
        )
        relation = FaultPlanDeterminism()
        for seed in (0, 1, 2):
            instance = make_instance(
                lambda n, rng: cycle_graph(max(3, n)), 30, seed
            )
            assert relation.check(subject, instance) is None


def test_use_reference_engine_restores_fast_engine():
    from repro.core import current_backend_name

    assert current_backend_name() == "fast"
    with use_reference_engine():
        assert current_backend_name() == "reference"
        with use_reference_engine():
            assert current_backend_name() == "reference"
        assert current_backend_name() == "reference"
    assert current_backend_name() == "fast"

"""Tests for ID assignment schemes and the phase-accounting helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.drivers import AlgorithmReport, Phase, PhaseLog
from repro.core import DuplicateIDError, RunResult
from repro.core.ids import (
    bfs_order_ids,
    check_unique_ids,
    id_bit_length,
    reversed_ids,
    sequential_ids,
    shuffled_ids,
    sparse_random_ids,
)
from repro.graphs.generators import cycle_graph, random_tree_bounded_degree


class TestIdSchemes:
    def test_sequential(self):
        assert sequential_ids(4) == [0, 1, 2, 3]

    def test_shuffled_is_permutation(self, rng):
        ids = shuffled_ids(50, rng)
        assert sorted(ids) == list(range(50))

    def test_sparse_random_distinct(self, rng):
        ids = sparse_random_ids(100, 16, rng)
        assert len(set(ids)) == 100
        assert all(0 <= i < 1 << 16 for i in ids)

    def test_sparse_random_space_too_small(self, rng):
        with pytest.raises(DuplicateIDError):
            sparse_random_ids(100, 6, rng)

    def test_bfs_order_covers_all(self, rng):
        g = random_tree_bounded_degree(60, 4, rng)
        ids = bfs_order_ids(g)
        assert sorted(ids) == list(range(60))

    def test_bfs_order_root_is_zero(self):
        g = cycle_graph(10)
        ids = bfs_order_ids(g, root=3)
        assert ids[3] == 0

    def test_bfs_order_disconnected(self):
        from repro.graphs import Graph

        g = Graph(5, [(0, 1), (3, 4)])
        ids = bfs_order_ids(g)
        assert sorted(ids) == list(range(5))

    def test_reversed(self):
        assert reversed_ids([0, 3, 1]) == [3, 0, 2]

    def test_bit_length(self):
        assert id_bit_length([0]) == 1
        assert id_bit_length([255]) == 8
        assert id_bit_length([]) == 1

    def test_check_unique(self):
        check_unique_ids([5, 1, 9])
        with pytest.raises(DuplicateIDError):
            check_unique_ids([1, 1])
        with pytest.raises(DuplicateIDError):
            check_unique_ids([-1, 0])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 200), st.integers(0, 2 ** 30))
    def test_shuffled_always_valid(self, n, seed):
        import random

        ids = shuffled_ids(n, random.Random(seed))
        check_unique_ids(ids)


class TestPhaseLog:
    def _result(self, rounds, messages=0):
        return RunResult(outputs=[], rounds=rounds, messages=messages)

    def test_accumulates(self):
        log = PhaseLog()
        log.add("a", self._result(3, 10))
        log.add("b", self._result(4, 20))
        log.add_rounds("c", 2, messages=5)
        assert log.total_rounds == 9
        assert log.total_messages == 35
        assert log.breakdown() == {"a": 3, "b": 4, "c": 2}

    def test_same_name_merges(self):
        log = PhaseLog()
        log.add_rounds("x", 1)
        log.add_rounds("x", 2)
        assert log.breakdown() == {"x": 3}
        assert len(log.phases) == 2

    def test_add_passes_result_through(self):
        log = PhaseLog()
        result = self._result(7)
        assert log.add("p", result) is result

    def test_report_consistency(self):
        log = PhaseLog()
        log.add_rounds("only", 5)
        report = AlgorithmReport(labeling=[1, 2], rounds=5, log=log)
        assert report.breakdown == {"only": 5}
        assert report.rounds == log.total_rounds

    def test_phase_dataclass(self):
        p = Phase("name", 3, 12)
        assert (p.name, p.rounds, p.messages) == ("name", 3, 12)

"""Tests for the extension algorithms: ruling sets and (2Δ-1)-edge
coloring (survey problems of Section I)."""

import pytest

from repro.algorithms import (
    deterministic_ruling_set,
    edge_coloring_2delta_minus_1,
    randomized_ruling_set,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_regular_graph,
    random_tree_bounded_degree,
    star_graph,
)
from repro.lcl import EdgeColoringLCL, MaximalIndependentSet, RulingSet


class TestRulingSetLCL:
    def test_mis_is_2_1_ruling_set(self, cubic_graph):
        from repro.algorithms import deterministic_mis

        report = deterministic_mis(cubic_graph)
        assert RulingSet(2, 1).is_solution(cubic_graph, report.labeling)
        assert MaximalIndependentSet().is_solution(
            cubic_graph, report.labeling
        )

    def test_rejects_close_members(self):
        g = path_graph(4)
        # Vertices 0 and 2 at distance 2 violate alpha=3.
        assert not RulingSet(3, 2).is_solution(g, [1, 0, 1, 0])
        assert RulingSet(2, 1).is_solution(g, [1, 0, 1, 0])

    def test_rejects_undominated(self):
        g = path_graph(7)
        labeling = [1, 0, 0, 0, 0, 0, 0]
        assert not RulingSet(2, 2).is_solution(g, labeling)
        assert RulingSet(2, 6).is_solution(g, labeling)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RulingSet(0, 1)
        with pytest.raises(ValueError):
            RulingSet(2, -1)


class TestRulingSetAlgorithms:
    @pytest.mark.parametrize("alpha", [2, 3, 4])
    def test_deterministic(self, alpha, rng):
        from repro.graphs.generators import random_regular_graph

        g = random_regular_graph(60, 3, rng)
        report = deterministic_ruling_set(g, alpha)
        assert RulingSet(alpha, alpha - 1).is_solution(g, report.labeling)

    @pytest.mark.parametrize("alpha", [2, 3])
    def test_randomized(self, alpha, rng):
        g = random_regular_graph(80, 4, rng)
        report = randomized_ruling_set(g, alpha, seed=11)
        assert RulingSet(alpha, alpha - 1).is_solution(g, report.labeling)

    def test_alpha_too_small(self, cubic_graph):
        with pytest.raises(ValueError):
            deterministic_ruling_set(cubic_graph, 1)

    def test_simulation_cost_scales_with_alpha(self, rng):
        g = random_regular_graph(60, 3, rng)
        r2 = randomized_ruling_set(g, 2, seed=3)
        r4 = randomized_ruling_set(g, 4, seed=3)
        # Factor (alpha-1) simulation slowdown is accounted.
        assert r4.rounds >= r2.rounds

    def test_on_tree(self, rng):
        g = random_tree_bounded_degree(120, 5, rng)
        report = deterministic_ruling_set(g, 3)
        assert RulingSet(3, 2).is_solution(g, report.labeling)


class TestEdgeColoringAlgorithm:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: path_graph(40),
            lambda rng: cycle_graph(31),
            lambda rng: star_graph(7),
            lambda rng: complete_graph(7),
            lambda rng: random_regular_graph(80, 4, rng),
            lambda rng: random_tree_bounded_degree(120, 6, rng),
        ],
    )
    def test_valid_on_families(self, factory, rng):
        g = factory(rng)
        report = edge_coloring_2delta_minus_1(g)
        delta = max(1, g.max_degree)
        assert EdgeColoringLCL(2 * delta - 1).is_solution(g, report.labeling)

    def test_reproducible(self, cubic_graph):
        a = edge_coloring_2delta_minus_1(cubic_graph)
        b = edge_coloring_2delta_minus_1(cubic_graph)
        assert a.labeling == b.labeling

    def test_rounds_flat_in_n(self):
        rounds = []
        for n in (64, 512, 4096):
            g = cycle_graph(n)
            rounds.append(edge_coloring_2delta_minus_1(g).rounds)
        assert rounds[-1] <= rounds[0] + 6

    def test_phase_breakdown(self, cubic_graph):
        report = edge_coloring_2delta_minus_1(cubic_graph)
        assert set(report.breakdown) == {
            "linial",
            "reduction",
            "color-exchange",
            "edge-turns",
        }

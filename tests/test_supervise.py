"""Supervised execution: heartbeat watchdog, deadline, bounded
retries, and the RSS degradation ladder.

These tests fork real child processes through
:func:`repro.supervise.supervise_run` and exercise genuine
pathologies — mid-run crashes resumed from snapshots, hung children,
memory ceilings — so workloads are kept deliberately small.
"""

import json
import os
import time

import pytest

from repro.core import observe_runs
from repro.supervise import RunOutcome, SupervisorEvent, supervise_run
from repro.supervise import DEGRADED_WORD_CAP, _rss_kb
from tests.test_checkpoint import KillSwitch, run_noisy


class Recorder:
    """Duck-typed sidecar: collects the supervisor's lifecycle rows."""

    def __init__(self):
        self.rows = []

    def record_event(self, kind, **fields):
        self.rows.append((kind, fields))


def test_validation():
    with pytest.raises(ValueError, match="retries"):
        supervise_run(lambda: 1, checkpoint_dir="x", retries=-1)


def test_success_first_attempt(tmp_path):
    def target():
        return run_noisy().rounds

    rec = Recorder()
    outcome = supervise_run(
        target,
        checkpoint_dir=str(tmp_path / "ck"),
        every_rounds=1,
        retries=0,
        sidecar=rec,
    )
    assert outcome.ok
    assert outcome.result == run_noisy().rounds
    assert outcome.attempts == 1
    assert outcome.error is None
    kinds = [e.kind for e in outcome.events]
    assert kinds[0] == "start" and kinds[-1] == "done"
    # The child's checkpoint scope audit rides home in the done event.
    done = outcome.events[-1]
    assert [s["action"] for s in done.detail["slots"]] == ["fresh"]
    # Every event is mirrored into the sidecar, in order.
    assert [k for k, _ in rec.rows] == kinds
    # The audit record is JSON-ready.
    json.dumps(outcome.to_dict())


def test_crash_is_retried_and_resumed_from_snapshot(tmp_path):
    marker = tmp_path / "first-attempt"
    ck = str(tmp_path / "ck")

    def target():
        first = not marker.exists()
        if first:
            marker.write_text("x")
        with observe_runs(KillSwitch(4 if first else None)):
            result = run_noisy()
        return result.rounds

    outcome = supervise_run(
        target,
        checkpoint_dir=ck,
        every_rounds=1,
        retries=2,
        backoff=0.01,
    )
    assert outcome.ok
    assert outcome.result == run_noisy().rounds
    assert outcome.attempts == 2
    kinds = [e.kind for e in outcome.events]
    assert "error" in kinds and "retry" in kinds
    # Attempt 1 resumed mid-run from attempt 0's snapshot — it did not
    # start over.
    done = next(e for e in outcome.events if e.kind == "done")
    actions = [s["action"] for s in done.detail["slots"]]
    assert actions == ["restored"]


def test_retries_exhausted_reports_last_error(tmp_path):
    def target():
        raise RuntimeError("always broken")

    outcome = supervise_run(
        target,
        checkpoint_dir=str(tmp_path / "ck"),
        retries=1,
        backoff=0.01,
    )
    assert not outcome.ok
    assert outcome.attempts == 2
    assert "always broken" in outcome.error
    assert [e.kind for e in outcome.events].count("error") == 2


def test_silent_child_death_is_a_verdict_not_a_hang(tmp_path):
    def target():
        os._exit(3)

    outcome = supervise_run(
        target,
        checkpoint_dir=str(tmp_path / "ck"),
        retries=0,
    )
    assert not outcome.ok
    assert "without a result" in outcome.error
    died = next(e for e in outcome.events if e.kind == "child_died")
    assert died.detail["exitcode"] == 3


def test_watchdog_kills_hung_child(tmp_path):
    def target():
        time.sleep(60)

    start = time.monotonic()
    outcome = supervise_run(
        target,
        checkpoint_dir=str(tmp_path / "ck"),
        retries=0,
        watchdog=0.4,
    )
    assert time.monotonic() - start < 30
    assert not outcome.ok
    assert "no heartbeat" in outcome.error
    assert "watchdog_kill" in [e.kind for e in outcome.events]


def test_deadline_bounds_all_attempts(tmp_path):
    def target():
        time.sleep(60)

    start = time.monotonic()
    outcome = supervise_run(
        target,
        checkpoint_dir=str(tmp_path / "ck"),
        retries=5,
        backoff=0.01,
        deadline=0.6,
    )
    assert time.monotonic() - start < 30
    assert not outcome.ok
    assert "deadline" in outcome.error
    assert "deadline" in [e.kind for e in outcome.events]


def test_rss_ceiling_walks_the_degradation_ladder(tmp_path):
    """Three RSS kills: stage 1 shrinks the vector buffers, stage 2
    falls back to the scalar backend and discards the (now foreign-
    format) snapshots, then the attempts run out."""
    base = _rss_kb(os.getpid())
    if base is None:
        pytest.skip("no /proc RSS readings on this platform")
    ceiling = base + 150_000  # the 400 MiB ballast sails past this

    def target():
        ballast = bytearray(400 * 1024 * 1024)
        time.sleep(60)
        return len(ballast)

    outcome = supervise_run(
        target,
        checkpoint_dir=str(tmp_path / "ck"),
        retries=2,
        backoff=0.01,
        max_rss_kb=ceiling,
    )
    assert not outcome.ok
    assert "over ceiling" in outcome.error
    kinds = [e.kind for e in outcome.events]
    assert kinds.count("rss_kill") == 3
    stages = [
        e.detail["stage"] for e in outcome.events if e.kind == "degrade"
    ]
    assert stages == [1, 2]
    assert "checkpoint_discarded" in kinds
    assert outcome.env["REPRO_VECTOR_WORD_CAP"] == str(DEGRADED_WORD_CAP)
    assert outcome.env["REPRO_BACKEND"] == "fast"


def test_event_and_outcome_dict_shapes():
    event = SupervisorEvent(
        kind="start", attempt=0, t=0.1234567, detail={"pid": 1}
    )
    data = event.to_dict()
    assert data == {"kind": "start", "attempt": 0, "t": 0.123457, "pid": 1}
    outcome = RunOutcome(
        ok=True, result=5, error=None, attempts=1, events=[event], env={}
    )
    data = outcome.to_dict()
    assert data["ok"] and data["attempts"] == 1
    assert "result" not in data  # the caller owns the result's shape

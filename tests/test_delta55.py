"""Tests for the paper's Theorem 11 algorithm (Δ >= 55)."""

import pytest

from repro.algorithms.delta55 import (
    MIN_DELTA,
    chang_kopelowitz_pettie_coloring,
)
from repro.graphs.generators import (
    random_tree_bounded_degree,
    random_tree_preferential,
)
from repro.lcl import KColoring


class TestDelta55:
    def test_small_delta_rejected(self, rng):
        g = random_tree_bounded_degree(50, 5, rng)
        with pytest.raises(ValueError):
            chang_kopelowitz_pettie_coloring(g, seed=1)

    def test_min_delta_override_small_tree(self, rng):
        # The machinery runs for smaller Δ when explicitly unlocked
        # (the guarantee starts at 55; the paper remarks very small Δ
        # changes the problem's character).
        g = random_tree_bounded_degree(200, 10, rng)
        report = chang_kopelowitz_pettie_coloring(
            g, seed=2, min_delta=g.max_degree
        )
        assert KColoring(g.max_degree).is_solution(g, report.labeling)

    def test_delta_55_tree(self, rng):
        g = random_tree_preferential(1500, 55, rng, seed_hub=True)
        assert g.max_degree == 55
        report = chang_kopelowitz_pettie_coloring(g, seed=3)
        assert KColoring(55).is_solution(g, report.labeling)

    def test_phase1_invariant_holds(self, rng):
        # The driver itself asserts |N(v) ∩ U| <= 3 after Phase 1; a
        # clean completion is the test.
        g = random_tree_preferential(800, 55, rng, seed_hub=True)
        report = chang_kopelowitz_pettie_coloring(g, seed=5)
        assert report.rounds > 0

    def test_breakdown_phases_present(self, rng):
        g = random_tree_preferential(600, 55, rng, seed_hub=True)
        report = chang_kopelowitz_pettie_coloring(g, seed=7)
        breakdown = report.breakdown
        assert "base-linial" in breakdown
        assert "base-reduction" in breakdown
        assert "phase1-peel-by-mis" in breakdown
        assert report.rounds == sum(breakdown.values())

    def test_rounds_nearly_size_free(self, rng):
        small = random_tree_preferential(500, 30, rng, seed_hub=True)
        large = random_tree_preferential(4000, 30, rng, seed_hub=True)
        assert small.max_degree == large.max_degree == 30
        kwargs = {"seed": 3, "min_delta": 20}
        r_small = chang_kopelowitz_pettie_coloring(small, **kwargs).rounds
        r_large = chang_kopelowitz_pettie_coloring(large, **kwargs).rounds
        # The schedule is Δ-determined; the engine's early global halt
        # introduces mild n-dependence (more vertices -> a few more
        # Phase-1 iterations before everyone is colored).  An 8x size
        # jump must cost at most a couple of iterations of Δ+3 rounds.
        iteration_length = 30 + 3
        assert r_large <= r_small + 3 * iteration_length

    def test_reproducible(self, rng):
        g = random_tree_preferential(400, 20, rng)
        a = chang_kopelowitz_pettie_coloring(g, seed=9, min_delta=15)
        b = chang_kopelowitz_pettie_coloring(g, seed=9, min_delta=15)
        assert a.labeling == b.labeling

    def test_constant_min_delta_exported(self):
        assert MIN_DELTA == 55

"""The sharded multi-process backend: partitioner properties, shard
configuration, bit-identity against the serial fast engine, and
worker-failure recovery.

The partitioner tests are seeded property checks over
:mod:`repro.verify.gen` instances — every failing instance is shrunk
with :func:`repro.verify.shrink_instance` before being reported, so a
red run prints minimal reproduction coordinates.

The runtime tests pin the determinism contract from
``docs/sharding.md``: for every (driver, instance, seed, fault plan),
the sharded backend at any shard count must reproduce the fast
engine's outcome, JSONL trace bytes, and metrics summary (trace and
summary compared for completing runs; raising runs are held to outcome
equality — the batch plane legally stops at the last completed round
boundary).  Tier-1 runs a two-driver smoke; the full
registry × plans × shard-counts matrix is marked ``slow`` and runs in
the CI ``sharded`` job.
"""

import contextlib
import io
import multiprocessing
import os
import signal

import pytest

from repro.algorithms.drivers import driver_registry
from repro.backends.sharded import (
    CONTIGUOUS,
    DEFAULT_SHARD_COUNT,
    PARTITION_MODES,
    RANDOM,
    SHARDS_ENV_VAR,
    WorkerCrashError,
    active_worker_pids,
    boundary_edges,
    current_shard_config,
    partition_graph,
    use_shards,
)
from repro.core import use_backend
from repro.core.checkpoint import checkpointing
from repro.core.engine import inject_faults, observe_runs
from repro.core.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.faults.runtime import mix64
from repro.graphs.generators import random_tree_bounded_degree
from repro.obs import JsonlTraceObserver, MetricsObserver
from repro.obs.observer import BatchRunObserver, RunObserver
from repro.verify import (
    make_instance,
    run_outcome,
    shrink_instance,
    standard_relations,
    subject_from_spec,
)
from repro.verify.relations import PartitionInvariance

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded backend needs the fork start method",
)


# ----------------------------------------------------------------------
# Partitioner properties (pure functions; no processes involved)
# ----------------------------------------------------------------------
def _tree_family(n, rng):
    return random_tree_bounded_degree(max(n, 3), 6, rng)


MIN_N = 4
SHARD_COUNTS = (1, 2, 3, 5)
SEEDS = (11, 23, 47)


def _check_property(prop, requested_n, seed):
    """Assert ``prop(instance) is None``, shrinking on failure."""
    instance = make_instance(_tree_family, requested_n, seed)
    failure = prop(instance)
    if failure is None:
        return
    shrunk = shrink_instance(
        instance, lambda inst: prop(inst) is not None, _tree_family, MIN_N
    )
    pytest.fail(
        f"{prop(shrunk) or failure} (instance {shrunk.describe()})"
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mode", PARTITION_MODES)
def test_every_vertex_in_exactly_one_shard(seed, n_shards, mode):
    def prop(instance):
        part = partition_graph(
            instance.graph, n_shards, mode=mode, seed=seed
        )
        seen = [v for block in part.shards for v in block]
        if sorted(seen) != list(range(instance.n)):
            return (
                f"shard blocks are not a partition of the vertex set: "
                f"{part.shards!r}"
            )
        for s, block in enumerate(part.shards):
            if list(block) != sorted(block):
                return f"shard {s} block not ascending: {block!r}"
            for v in block:
                if part.owner[v] != s:
                    return (
                        f"owner[{v}] == {part.owner[v]} but vertex "
                        f"sits in shard {s}"
                    )
        return None

    _check_property(prop, 40, seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mode", PARTITION_MODES)
def test_boundary_edges_symmetric_across_shard_pairs(seed, n_shards, mode):
    def prop(instance):
        part = partition_graph(
            instance.graph, n_shards, mode=mode, seed=seed
        )
        for a in range(n_shards):
            for b in range(a + 1, n_shards):
                ab = boundary_edges(instance.graph, part, a, b)
                ba = boundary_edges(instance.graph, part, b, a)
                if ab != ba:
                    return (
                        f"boundary({a},{b}) != boundary({b},{a}): "
                        f"{sorted(ab)} vs {sorted(ba)}"
                    )
        return None

    _check_property(prop, 40, seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", PARTITION_MODES)
def test_partition_is_a_pure_function(seed, mode):
    def prop(instance):
        first = partition_graph(instance.graph, 3, mode=mode, seed=seed)
        second = partition_graph(instance.graph, 3, mode=mode, seed=seed)
        if first != second:
            return "repeated partition_graph calls disagree"
        return None

    _check_property(prop, 40, seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mode", PARTITION_MODES)
def test_consumers_are_exactly_the_foreign_neighbor_shards(
    seed, n_shards, mode
):
    def prop(instance):
        graph = instance.graph
        part = partition_graph(graph, n_shards, mode=mode, seed=seed)
        for v in range(instance.n):
            foreign = sorted(
                {part.owner[u] for u in graph.neighbors(v)}
                - {part.owner[v]}
            )
            recorded = list(part.consumers.get(v, ()))
            if recorded != foreign:
                return (
                    f"consumers[{v}] == {recorded} but foreign "
                    f"neighbor shards are {foreign}"
                )
        return None

    _check_property(prop, 40, seed)


@pytest.mark.parametrize("mode", PARTITION_MODES)
def test_empty_and_singleton_shards_are_tolerated(mode):
    instance = make_instance(_tree_family, 5, 7)
    part = partition_graph(
        instance.graph, instance.n * 3, mode=mode, seed=7
    )
    assert sum(len(block) for block in part.shards) == instance.n
    assert any(not block for block in part.shards)
    sizes = {len(block) for block in part.shards}
    assert sizes <= {0, 1} or mode == RANDOM


def test_partition_rejects_bad_arguments():
    instance = make_instance(_tree_family, 10, 1)
    with pytest.raises(ReproError, match="positive"):
        partition_graph(instance.graph, 0)
    with pytest.raises(ReproError, match="unknown partition mode"):
        partition_graph(instance.graph, 2, mode="striped")


def test_boundary_edges_of_a_shard_with_itself_is_empty():
    instance = make_instance(_tree_family, 20, 3)
    part = partition_graph(instance.graph, 2)
    assert boundary_edges(instance.graph, part, 0, 0) == frozenset()
    assert boundary_edges(instance.graph, part, 1, 1) == frozenset()


# ----------------------------------------------------------------------
# Shard configuration resolution
# ----------------------------------------------------------------------
def test_shard_config_defaults_and_env(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
    assert current_shard_config().n_shards == DEFAULT_SHARD_COUNT
    monkeypatch.setenv(SHARDS_ENV_VAR, "6")
    assert current_shard_config().n_shards == 6


def test_ambient_use_shards_beats_the_environment(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV_VAR, "8")
    with use_shards(3, mode=RANDOM, seed=9):
        config = current_shard_config()
        assert config.n_shards == 3
        assert config.mode == RANDOM
        assert config.seed == 9
    assert current_shard_config().n_shards == 8


@pytest.mark.parametrize(
    "bad, match",
    [("0", "positive"), ("-2", "positive"), ("many", SHARDS_ENV_VAR)],
)
def test_invalid_shard_environment_fails_loudly(monkeypatch, bad, match):
    monkeypatch.setenv(SHARDS_ENV_VAR, bad)
    with pytest.raises(ReproError, match=match):
        current_shard_config()


def test_use_shards_validates_eagerly():
    with pytest.raises(ReproError, match="positive"):
        use_shards(0).__enter__()
    with pytest.raises(ReproError, match="unknown partition mode"):
        use_shards(2, mode="striped").__enter__()


# ----------------------------------------------------------------------
# Bit-identity against the serial fast engine
# ----------------------------------------------------------------------
SEED = 12345


def _crash_plan(seed):
    return FaultPlan(
        seed=mix64(seed, 0xFA02),
        crash_rate=0.05,
        crash_round=1,
        round_budget=512,
    )


def _noise_plan(seed):
    return FaultPlan(
        seed=mix64(seed, 0xFA01),
        drop_rate=0.02,
        corrupt_rate=0.01,
        corrupt=lambda payload: ("corrupted", payload),
        round_budget=512,
    )


def _observed(subject, instance):
    metrics = MetricsObserver()
    sink = io.StringIO()
    trace = JsonlTraceObserver(sink, node_steps=True)
    with observe_runs(metrics, trace):
        outcome = run_outcome(subject, instance)
    return outcome, sink.getvalue(), metrics.summary()


def _assert_identical(spec, plan, legs, label):
    """``legs`` is a list of (label, zero-arg use_shards factory) —
    factories because a contextmanager instance is single-use."""
    subject = subject_from_spec(spec)
    instance = make_instance(spec.make_graph, spec.quick_n, SEED)
    scope = (
        contextlib.nullcontext() if plan is None else inject_faults(plan)
    )
    with scope, use_backend("fast"):
        base, base_trace, base_summary = _observed(subject, instance)
    for leg_label, shards in legs:
        scope = (
            contextlib.nullcontext()
            if plan is None
            else inject_faults(plan)
        )
        with scope, use_backend("sharded"), shards():
            got, got_trace, got_summary = _observed(subject, instance)
        where = f"{spec.name} {label} {leg_label}"
        assert got == base, f"{where}: outcome diverges"
        if base[0] != "ok":
            continue
        assert got_trace == base_trace, f"{where}: trace bytes diverge"
        assert got_summary == base_summary, (
            f"{where}: metrics summary diverges"
        )


@requires_fork
@pytest.mark.parametrize("name", ["luby-mis", "linial-coloring"])
def test_trace_identity_smoke(name):
    spec = driver_registry()[name]
    legs = [
        (f"shards={k}", lambda k=k: use_shards(k)) for k in (2, 4)
    ]
    _assert_identical(spec, None, legs, "bare")


@requires_fork
def test_faulted_trace_identity_smoke():
    """A crash plan that the run survives: the faulted byte-identity
    path (shard-local crash-stop, parent-side fault reconstruction)."""
    spec = driver_registry()["luby-mis"]
    legs = [
        ("shards=2", lambda: use_shards(2)),
        ("random2", lambda: use_shards(2, mode=RANDOM, seed=77)),
    ]
    _assert_identical(spec, _crash_plan(SEED), legs, "crash")


@requires_fork
@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(driver_registry()))
def test_full_matrix_is_bit_identical(name):
    """The deep matrix: every registry driver, bare plus both fault
    adversaries, at shard counts {1, 2, 4} and one random-placement
    leg.  Runs in the CI ``sharded`` job (`-m slow`)."""
    spec = driver_registry()[name]
    legs = [
        (f"shards={k}", lambda k=k: use_shards(k)) for k in (1, 2, 4)
    ]
    legs.append(
        ("random2", lambda: use_shards(2, mode=RANDOM, seed=77))
    )
    for label, plan in (
        ("bare", None),
        ("noise", _noise_plan(SEED)),
        ("crash", _crash_plan(SEED)),
    ):
        _assert_identical(spec, plan, legs, label)


@requires_fork
def test_partition_invariance_relation_passes_on_a_driver():
    spec = driver_registry()["linial-coloring"]
    relation = PartitionInvariance()
    subject = subject_from_spec(spec)
    instance = make_instance(spec.make_graph, spec.quick_n, 4242)
    assert relation.applies_to(subject)
    assert relation.check(subject, instance) is None


def test_partition_invariance_ships_in_the_standard_catalogue():
    assert any(
        isinstance(relation, PartitionInvariance)
        for relation in standard_relations()
    )


class _ScalarRecorder(RunObserver):
    """Deliberately batch-incapable: forces the sharded runner onto its
    documented fallback to the fast engine."""

    def __init__(self):
        self.steps = 0

    def on_node_step(self, round_index, vertex, ctx):
        self.steps += 1


@requires_fork
def test_scalar_observer_falls_back_to_identical_results():
    spec = driver_registry()["linial-coloring"]
    subject = subject_from_spec(spec)
    instance = make_instance(spec.make_graph, spec.quick_n, SEED)
    recorder_fast = _ScalarRecorder()
    with use_backend("fast"), observe_runs(recorder_fast):
        base = run_outcome(subject, instance)
    recorder_sharded = _ScalarRecorder()
    with use_backend("sharded"), use_shards(2), observe_runs(
        recorder_sharded
    ):
        got = run_outcome(subject, instance)
    assert got == base
    assert recorder_sharded.steps == recorder_fast.steps


# ----------------------------------------------------------------------
# Worker failure and recovery
# ----------------------------------------------------------------------
class _KillOneWorker(BatchRunObserver):
    """Checkpoint-capable batch observer that SIGKILLs one live shard
    worker after ``kill_after`` delivered round batches."""

    checkpoint_capable = True

    def __init__(self, kill_after=None):
        super().__init__()
        self.kill_after = kill_after
        self.seen = 0
        self.killed = None

    def checkpoint_state(self):
        return self.seen

    def restore_checkpoint(self, state):
        self.seen = 0 if state is None else int(state)

    def on_round_batch(self, batch):
        if batch.round_index < 0:
            return
        self.seen += 1
        if self.kill_after is not None and self.seen == self.kill_after:
            pids = active_worker_pids()
            assert pids, "no live shard workers to kill"
            self.killed = pids[-1]
            os.kill(self.killed, signal.SIGKILL)


def _kill_observed(subject, instance, kill, sink):
    metrics = MetricsObserver()
    trace = JsonlTraceObserver(sink, node_steps=True)
    with observe_runs(metrics, trace, kill):
        outcome = run_outcome(subject, instance)
    return outcome, metrics.summary()


@requires_fork
@pytest.mark.parametrize("resume_shards", [4, 2])
def test_sigkill_worker_then_resume_is_byte_identical(
    tmp_path, resume_shards
):
    """Killing one shard worker mid-run surfaces a WorkerCrashError;
    resuming from the latest checkpoint — at the original *or* a
    different shard count, checkpoints being shard-agnostic — must
    reproduce the uninterrupted trace bytes exactly."""
    spec = driver_registry()["luby-mis"]
    subject = subject_from_spec(spec)
    instance = make_instance(spec.make_graph, spec.quick_n, SEED)

    counter = _KillOneWorker()
    base_sink = io.StringIO()
    with use_backend("sharded"), use_shards(4):
        base, base_summary = _kill_observed(
            subject, instance, counter, base_sink
        )
    assert base[0] == "ok"
    assert counter.seen >= 2, "run too short to kill mid-flight"

    workdir = str(tmp_path / f"ckpt-{resume_shards}")
    kill = _KillOneWorker(max(1, counter.seen // 2))
    kill_sink = io.StringIO()
    with use_backend("sharded"), use_shards(4), checkpointing(
        workdir, every_rounds=1
    ):
        killed, _ = _kill_observed(subject, instance, kill, kill_sink)
    assert killed[0] == "error" and "WorkerCrashError" in killed[1]
    assert str(kill.killed) in killed[1]

    resume_sink = io.StringIO()
    resume_sink.write(kill_sink.getvalue())
    metrics = MetricsObserver()
    trace = JsonlTraceObserver(resume_sink, node_steps=True)
    with use_backend("sharded"), use_shards(resume_shards), checkpointing(
        workdir, every_rounds=1, resume=True
    ), observe_runs(metrics, trace, _KillOneWorker()):
        resumed = run_outcome(subject, instance)
    assert resumed == base
    assert resume_sink.getvalue() == base_sink.getvalue()
    assert metrics.summary() == base_summary


@requires_fork
def test_worker_crash_error_names_the_shard_and_remedy(tmp_path):
    spec = driver_registry()["luby-mis"]
    subject = subject_from_spec(spec)
    instance = make_instance(spec.make_graph, spec.quick_n, SEED)
    kill = _KillOneWorker(1)
    with use_backend("sharded"), use_shards(2):
        outcome, _ = _kill_observed(
            subject, instance, kill, io.StringIO()
        )
    assert outcome[0] == "error"
    assert "WorkerCrashError" in outcome[1]
    assert "resume from the latest checkpoint" in outcome[1]

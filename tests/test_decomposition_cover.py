"""Tests for MPX network decomposition, decomposition-based coloring,
2-approximate vertex cover, and the rooted-tree Cole-Vishkin variant."""

import pytest

from repro.algorithms.cole_vishkin import (
    ColeVishkinTreeColoring,
    rooted_tree_orientation_inputs,
)
from repro.algorithms.decomposition import (
    clusters_are_connected,
    decomposition_coloring,
    mpx_decomposition,
)
from repro.algorithms.vertex_cover import (
    approximation_certificate,
    deterministic_vertex_cover,
    is_vertex_cover,
    randomized_vertex_cover,
)
from repro.core import Model, run_local
from repro.graphs.generators import (
    complete_dary_tree,
    cycle_graph,
    path_graph,
    random_regular_graph,
    random_tree_bounded_degree,
    star_graph,
)
from repro.lcl import KColoring


class TestMPXDecomposition:
    def test_every_vertex_assigned(self, rng):
        g = random_regular_graph(200, 4, rng)
        decomposition = mpx_decomposition(g, beta=0.4, seed=1)
        assert len(decomposition.assignment) == 200
        assert sum(len(m) for m in decomposition.clusters.values()) == 200

    def test_clusters_connected(self, rng):
        g = random_regular_graph(150, 3, rng)
        decomposition = mpx_decomposition(g, beta=0.3, seed=2)
        assert clusters_are_connected(g, decomposition)

    def test_radius_logarithmic(self, rng):
        import math

        for n in (100, 800):
            g = random_regular_graph(n, 4, rng)
            decomposition = mpx_decomposition(g, beta=0.4, seed=3)
            assert decomposition.max_radius() <= 6 * math.log(n)

    def test_cut_fraction_scales_with_beta(self, rng):
        g = random_regular_graph(600, 4, rng)
        coarse = mpx_decomposition(g, beta=0.15, seed=4)
        fine = mpx_decomposition(g, beta=0.8, seed=4)
        assert coarse.cut_edges(g) < fine.cut_edges(g)

    def test_invalid_beta(self, cubic_graph):
        with pytest.raises(ValueError):
            mpx_decomposition(cubic_graph, beta=0.0)

    def test_path_decomposition(self):
        g = path_graph(300)
        decomposition = mpx_decomposition(g, beta=0.5, seed=5)
        assert clusters_are_connected(g, decomposition)


class TestDecompositionColoring:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: random_regular_graph(150, 4, rng),
            lambda rng: random_tree_bounded_degree(200, 6, rng),
            lambda rng: cycle_graph(75),
        ],
    )
    def test_valid_coloring(self, factory, rng):
        g = factory(rng)
        decomposition = mpx_decomposition(g, beta=0.4, seed=6)
        report = decomposition_coloring(g, decomposition, seed=6)
        assert KColoring(g.max_degree + 1).is_solution(g, report.labeling)

    def test_round_accounting(self, rng):
        g = random_regular_graph(100, 3, rng)
        decomposition = mpx_decomposition(g, beta=0.4, seed=7)
        report = decomposition_coloring(g, decomposition, seed=7)
        assert report.breakdown["mpx-race"] == decomposition.rounds
        assert report.rounds > decomposition.rounds


class TestVertexCover:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: path_graph(50),
            lambda rng: star_graph(8),
            lambda rng: random_regular_graph(120, 5, rng),
            lambda rng: random_tree_bounded_degree(100, 4, rng),
        ],
    )
    def test_randomized_cover(self, factory, rng):
        g = factory(rng)
        report = randomized_vertex_cover(g, seed=9)
        assert is_vertex_cover(g, report.labeling)
        assert approximation_certificate(
            g, report.labeling, report.matching_labels
        )

    def test_deterministic_cover(self, rng):
        g = random_regular_graph(100, 4, rng)
        report = deterministic_vertex_cover(g)
        assert is_vertex_cover(g, report.labeling)
        assert approximation_certificate(
            g, report.labeling, report.matching_labels
        )

    def test_cover_size_at_most_twice_matching(self, rng):
        from repro.lcl import matching_edges

        g = random_regular_graph(200, 4, rng)
        report = randomized_vertex_cover(g, seed=10)
        matched = matching_edges(g, report.matching_labels)
        cover_size = sum(report.labeling)
        assert cover_size == 2 * len(matched)

    def test_star_cover_is_tight(self):
        g = star_graph(10)
        report = deterministic_vertex_cover(g)
        # Any maximal matching on a star has one edge: cover size 2,
        # optimum 1 — exactly factor 2.
        assert sum(report.labeling) == 2

    def test_empty_graph(self):
        from repro.graphs.generators import empty_graph

        g = empty_graph(5)
        report = randomized_vertex_cover(g, seed=1)
        assert sum(report.labeling) == 0


class TestTreeColeVishkin:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: complete_dary_tree(3, 5),
            lambda rng: star_graph(30),
            lambda rng: random_tree_bounded_degree(400, 10, rng),
            lambda rng: path_graph(128),
        ],
    )
    def test_three_colors_any_tree(self, factory, rng):
        g = factory(rng)
        inputs = rooted_tree_orientation_inputs(g)
        result = run_local(
            g, ColeVishkinTreeColoring(), Model.DET, node_inputs=inputs
        )
        assert KColoring(3).is_solution(g, result.outputs)

    def test_forest(self, rng):
        from repro.graphs.generators import random_forest

        g = random_forest(150, 4, 5, rng)
        inputs = rooted_tree_orientation_inputs(g)
        result = run_local(
            g, ColeVishkinTreeColoring(), Model.DET, node_inputs=inputs
        )
        assert KColoring(3).is_solution(g, result.outputs)

    def test_rejects_non_forest(self):
        with pytest.raises(ValueError):
            rooted_tree_orientation_inputs(cycle_graph(5))

    def test_log_star_rounds(self, rng):
        rounds = []
        for n in (64, 4096, 65536):
            g = random_tree_bounded_degree(n, 4, rng)
            inputs = rooted_tree_orientation_inputs(g)
            result = run_local(
                g,
                ColeVishkinTreeColoring(),
                Model.DET,
                node_inputs=inputs,
            )
            rounds.append(result.rounds)
        assert rounds[-1] <= rounds[0] + 3

"""Tests for the executable round-elimination operator — the machinery
behind Brandt et al.'s lower bound (Section IV's engine)."""

import pytest

from repro.lowerbounds.roundeliminator import (
    BipartiteProblem,
    edge_grabbing_problem,
    is_fixed_point,
    perfect_matching_problem,
    problems_equivalent,
    round_eliminate,
    sinkless_orientation_problem,
    survives_elimination,
)


def so_edge_centric(delta: int = 3) -> BipartiteProblem:
    """Sinkless orientation seen from the edges (white = edges)."""
    return BipartiteProblem.make(
        f"so-edge-{delta}",
        2,
        delta,
        [["O", "I"]],
        [["O"] * k + ["I"] * (delta - k) for k in range(1, delta + 1)],
    )


class TestProblemConstruction:
    def test_make_collects_labels(self):
        p = sinkless_orientation_problem(3)
        assert p.labels == frozenset({"O", "I"})
        assert len(p.white) == 3
        assert len(p.black) == 1

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            BipartiteProblem.make("bad", 3, 2, [["A", "A"]], [["A", "A"]])

    def test_trivial_detection(self):
        assert edge_grabbing_problem().is_trivial()
        assert not sinkless_orientation_problem(3).is_trivial()
        assert not perfect_matching_problem(3).is_trivial()

    def test_empty_detection(self):
        p = BipartiteProblem.make("empty", 2, 2, [], [["A", "A"]])
        assert p.is_empty()


class TestOperator:
    def test_re_swaps_roles(self):
        so = sinkless_orientation_problem(3)
        r = round_eliminate(so)
        assert r.white_degree == 2
        assert r.black_degree == 3

    def test_re_of_so_is_edge_centric_so(self):
        """One elimination step maps vertex-SO exactly onto edge-SO —
        the 'free' half-step of the Brandt et al. argument."""
        for delta in (3, 4):
            so = sinkless_orientation_problem(delta)
            mapping = problems_equivalent(
                round_eliminate(so), so_edge_centric(delta)
            )
            assert mapping is not None

    def test_re_of_pm_is_edge_centric_pm(self):
        pm = perfect_matching_problem(3)
        pm_edge = BipartiteProblem.make(
            "pm-edge", 2, 3, [["M", "M"], ["U", "U"]], [["M", "U", "U"]]
        )
        assert problems_equivalent(round_eliminate(pm), pm_edge)

    def test_so_survives_many_eliminations(self):
        """SO never trivializes and its alphabet stays at 2 labels —
        the fixed-point behavior that forces ω(1) rounds."""
        so = sinkless_orientation_problem(3)
        assert survives_elimination(so, steps=5)
        current = so
        for _ in range(5):
            current = round_eliminate(current)
            assert len(current.labels) == 2

    def test_so_sequence_cycles_with_period_two(self):
        so = sinkless_orientation_problem(3)
        r1 = round_eliminate(so)
        r3 = round_eliminate(round_eliminate(r1))
        assert problems_equivalent(r1, r3) is not None

    def test_trivial_problem_collapses(self):
        assert not survives_elimination(edge_grabbing_problem(), steps=2)

    def test_exact_fixed_point_check_is_strict(self):
        # SO is a fixed point only after semantic simplification; the
        # strict syntactic check is expected to say no (documented).
        assert not is_fixed_point(sinkless_orientation_problem(3))

    def test_equivalence_rejects_different_shapes(self):
        so3 = sinkless_orientation_problem(3)
        so4 = sinkless_orientation_problem(4)
        assert problems_equivalent(so3, so4) is None

    def test_equivalence_finds_renaming(self):
        a = BipartiteProblem.make("a", 2, 2, [["X", "Y"]], [["X", "X"]])
        b = BipartiteProblem.make("b", 2, 2, [["P", "Q"]], [["Q", "Q"]])
        mapping = problems_equivalent(a, b)
        assert mapping == {"X": "Q", "Y": "P"}

    def test_label_explosion_guard(self):
        # A 4-label problem with permissive constraints can explode;
        # the guard must raise rather than hang.
        labels = ["A", "B", "C", "D"]
        import itertools

        white = [
            c
            for c in itertools.combinations_with_replacement(labels, 2)
            if len(set(c)) == 2
        ]
        black = list(
            itertools.combinations_with_replacement(labels, 2)
        )
        p = BipartiteProblem.make("wide", 2, 2, white, black)
        try:
            survives_elimination(p, steps=3, max_labels=4)
        except ValueError:
            pass  # guard fired: acceptable

"""Tests for Linial's coloring: the cover-free family and the engine
algorithms (Theorems 1 and 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.linial import (
    LinialColoring,
    OrientedLinialColoring,
    choose_cover_free_params,
    cover_free_palette_size,
    cover_free_set,
    is_prime,
    linial_fixed_point,
    linial_recolor,
    linial_schedule,
    next_prime,
)
from repro.analysis import log_star
from repro.core import Model, run_local
from repro.core.ids import shuffled_ids, sparse_random_ids
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_regular_graph,
    random_tree_bounded_degree,
)
from repro.lcl import ProperColoring


class TestPrimes:
    def test_is_prime(self):
        primes = [x for x in range(30) if is_prime(x)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17


class TestCoverFreeFamily:
    def test_params_satisfy_constraints(self):
        for k in (10, 100, 10_000, 1 << 20):
            for degree in (1, 2, 5, 16):
                d, q = choose_cover_free_params(k, degree)
                assert is_prime(q)
                assert q > degree * d
                assert q ** (d + 1) >= k

    def test_set_size_is_q(self):
        d, q = choose_cover_free_params(1000, 4)
        for color in (0, 1, 999):
            assert len(cover_free_set(color, d, q)) == q

    def test_sets_distinct(self):
        d, q = choose_cover_free_params(500, 3)
        seen = {cover_free_set(c, d, q) for c in range(500)}
        assert len(seen) == 500

    def test_color_out_of_range(self):
        d, q = choose_cover_free_params(10, 2)
        with pytest.raises(ValueError):
            cover_free_set(q ** (d + 1), d, q)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 2000),
        st.integers(1, 8),
        st.data(),
    )
    def test_cover_free_property(self, k, degree, data):
        """No set is covered by the union of `degree` others — the
        heart of Theorem 1."""
        d, q = choose_cover_free_params(k, degree)
        me = data.draw(st.integers(0, k - 1))
        others = data.draw(
            st.lists(
                st.integers(0, k - 1).filter(lambda c: c != me),
                max_size=degree,
            )
        )
        own = cover_free_set(me, d, q)
        covered = set()
        for other in others:
            covered |= cover_free_set(other, d, q)
        assert own - covered, "cover-free property violated"

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 1000), st.integers(1, 6), st.data())
    def test_recolor_escapes_neighbors(self, k, degree, data):
        me = data.draw(st.integers(0, k - 1))
        neighbors = data.draw(
            st.lists(
                st.integers(0, k - 1).filter(lambda c: c != me),
                max_size=degree,
            )
        )
        new = linial_recolor(me, neighbors, k, degree)
        for other in neighbors:
            d, q = choose_cover_free_params(k, degree)
            assert new not in cover_free_set(other, d, q)


class TestSchedule:
    def test_schedule_decreases(self):
        schedule = linial_schedule(1 << 20, 4)
        assert all(a > b for a, b in zip(schedule, schedule[1:]))

    def test_fixed_point_is_delta_squared(self):
        for degree in (2, 4, 8, 16):
            fp = linial_fixed_point(degree)
            assert fp <= 40 * degree * degree  # β·Δ² with our β
            assert fp >= degree * degree

    def test_schedule_length_is_log_star(self):
        # Round counts should grow like log* k0: single digits even for
        # astronomically large ID spaces.
        assert len(linial_schedule(1 << 64, 3)) <= log_star(1 << 64) + 4

    def test_palette_after(self):
        assert cover_free_palette_size(100, 2) < 100


class TestEngineAlgorithms:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: path_graph(200),
            lambda rng: cycle_graph(128),
            lambda rng: random_tree_bounded_degree(300, 6, rng),
            lambda rng: random_regular_graph(120, 4, rng),
        ],
    )
    def test_linial_coloring_proper_and_small(self, factory, rng):
        g = factory(rng)
        result = run_local(g, LinialColoring(), Model.DET)
        assert ProperColoring().is_solution(g, result.outputs)
        assert max(result.outputs) < linial_fixed_point(max(1, g.max_degree))

    def test_works_with_shuffled_ids(self, medium_tree, rng):
        ids = shuffled_ids(medium_tree.num_vertices, rng)
        result = run_local(medium_tree, LinialColoring(), Model.DET, ids=ids)
        assert ProperColoring().is_solution(medium_tree, result.outputs)

    def test_works_with_sparse_ids(self, medium_tree, rng):
        n = medium_tree.num_vertices
        bits = 2 * max(1, (n - 1).bit_length())
        ids = sparse_random_ids(n, bits, rng)
        result = run_local(
            medium_tree,
            LinialColoring(),
            Model.DET,
            ids=ids,
            global_params={"id_space": 1 << bits},
        )
        assert ProperColoring().is_solution(medium_tree, result.outputs)

    def test_round_count_is_log_star_like(self, rng):
        rounds = []
        for n in (64, 4096, 65536):
            g = path_graph(n)
            result = run_local(g, LinialColoring(), Model.DET)
            rounds.append(result.rounds)
        # log*-type growth: tiny and nearly flat.
        assert rounds[-1] <= rounds[0] + 3
        assert rounds[-1] <= 8

    def test_oriented_variant_on_tree(self, rng):
        g = random_tree_bounded_degree(300, 8, rng)
        # Orient each edge toward the lower index (a valid out-degree-1
        # orientation for BFS-numbered random trees is not guaranteed;
        # use parent pointers instead: every non-root points to its
        # parent in a BFS tree).
        parent = {0: None}
        order = [0]
        seen = {0}
        head = 0
        while head < len(order):
            v = order[head]
            head += 1
            for u in g.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    parent[u] = v
                    order.append(u)
        out_ports = []
        for v in g.vertices():
            ports = []
            if parent[v] is not None:
                ports.append(g.port_of(v, parent[v]))
            out_ports.append(ports)
        result = run_local(
            g,
            OrientedLinialColoring(),
            Model.DET,
            node_inputs=[{"out_ports": p} for p in out_ports],
            global_params={"out_degree": 1},
        )
        assert ProperColoring().is_solution(g, result.outputs)
        # Out-degree 1 gives an O(1)-size fixed point, far below Δ².
        assert max(result.outputs) < linial_fixed_point(1)

"""Tests for graph generators: every family delivers what it claims."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import GraphError, is_proper_edge_coloring
from repro.graphs.generators import (
    caterpillar_graph,
    circulant_graph,
    complete_bipartite_graph,
    complete_dary_tree,
    complete_graph,
    complete_tree_with_max_degree,
    cycle_graph,
    double_cover,
    empty_graph,
    girth_target,
    high_girth_bipartite_graph,
    high_girth_regular_graph,
    hypercube_graph,
    path_graph,
    random_forest,
    random_regular_bipartite_graph,
    random_regular_graph,
    random_tree_bounded_degree,
    random_tree_preferential,
    random_tree_prufer,
    ring_of_cycles,
    spider_graph,
    star_graph,
    tree_from_prufer,
    tree_like_radius,
)


class TestBasicFamilies:
    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.num_edges == 0

    def test_path(self):
        g = path_graph(6)
        assert g.is_tree()
        assert g.max_degree == 2

    def test_cycle_min_size(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.is_tree()
        assert g.degree(0) == 7

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert g.is_regular(5)

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_edges == 12
        assert g.girth() == 4

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_vertices == 16
        assert g.is_regular(4)
        assert g.girth() == 4

    def test_ring_of_cycles(self):
        g = ring_of_cycles(3, 5)
        assert g.num_vertices == 15
        assert len(g.connected_components()) == 3
        assert g.is_regular(2)

    def test_circulant(self):
        g = circulant_graph(12, [1, 3])
        assert g.is_regular(4)

    def test_circulant_zero_offset(self):
        with pytest.raises(GraphError):
            circulant_graph(10, [0])


class TestTrees:
    def test_complete_dary_tree_size(self):
        g = complete_dary_tree(3, 3)
        assert g.num_vertices == 1 + 3 + 9 + 27
        assert g.is_tree()
        assert g.max_degree == 4

    def test_complete_dary_depth_zero(self):
        g = complete_dary_tree(3, 0)
        assert g.num_vertices == 1

    def test_complete_tree_with_max_degree(self):
        g = complete_tree_with_max_degree(5, 200)
        assert g.num_vertices >= 200
        assert g.max_degree == 5
        assert g.is_tree()

    def test_prufer_round_trip_small(self):
        g = tree_from_prufer([2, 2, 0])
        assert g.is_tree()
        assert g.num_vertices == 5
        assert g.degree(2) == 3

    def test_prufer_out_of_range(self):
        with pytest.raises(GraphError):
            tree_from_prufer([7])

    def test_random_prufer_is_tree(self, rng):
        for n in (1, 2, 3, 17, 100):
            g = random_tree_prufer(n, rng)
            assert g.is_tree()
            assert g.num_vertices == n

    def test_bounded_degree_tree(self, rng):
        g = random_tree_bounded_degree(500, 4, rng)
        assert g.is_tree()
        assert g.max_degree <= 4

    def test_bounded_degree_impossible(self, rng):
        with pytest.raises(GraphError):
            random_tree_bounded_degree(5, 1, rng)

    def test_preferential_tree_realizes_cap(self, rng):
        g = random_tree_preferential(2000, 20, rng)
        assert g.is_tree()
        assert g.max_degree == 20

    def test_spider(self):
        g = spider_graph(5, 3)
        assert g.is_tree()
        assert g.degree(0) == 5
        assert g.num_vertices == 16

    def test_caterpillar(self):
        g = caterpillar_graph(4, 2)
        assert g.is_tree()
        assert g.num_vertices == 12

    def test_random_forest_components(self, rng):
        g = random_forest(60, 4, 5, rng)
        assert g.is_forest()
        assert len(g.connected_components()) == 4
        assert g.max_degree <= 5


class TestRegular:
    @pytest.mark.parametrize("degree", [2, 3, 5, 8])
    def test_random_regular(self, degree, rng):
        g = random_regular_graph(60, degree, rng)
        assert g.is_regular(degree)

    def test_odd_product_rejected(self, rng):
        with pytest.raises(GraphError):
            random_regular_graph(9, 3, rng)

    def test_degree_too_big(self, rng):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4, rng)

    def test_degree_zero(self, rng):
        g = random_regular_graph(6, 0, rng)
        assert g.num_edges == 0

    def test_bipartite_permutation_model(self, rng):
        g, coloring = random_regular_bipartite_graph(40, 4, rng)
        assert g.is_regular(4)
        assert g.num_vertices == 80
        assert is_proper_edge_coloring(g, coloring)
        assert g.girth() is None or g.girth() % 2 == 0

    def test_double_cover(self, rng):
        g = random_regular_graph(20, 3, rng)
        cover = double_cover(g)
        assert cover.is_regular(3)
        assert cover.num_vertices == 40
        girth = cover.girth()
        assert girth is None or girth % 2 == 0


class TestHighGirth:
    def test_girth_target_values(self):
        assert girth_target(10, 2) == 4
        assert girth_target(10 ** 6, 3) >= 4

    def test_high_girth_regular(self, rng):
        g = high_girth_regular_graph(200, 3, 7, rng)
        assert g.is_regular(3)
        assert g.girth() >= 7

    def test_high_girth_bipartite(self, rng):
        g, coloring = high_girth_bipartite_graph(150, 3, 8, rng)
        assert g.is_regular(3)
        assert g.girth() >= 8
        assert is_proper_edge_coloring(g, coloring)

    def test_unreachable_girth_raises(self, rng):
        with pytest.raises(GraphError):
            high_girth_regular_graph(12, 3, 12, rng, max_swaps=500)

    def test_tree_like_radius(self, rng):
        g = high_girth_regular_graph(200, 3, 8, rng)
        t = tree_like_radius(g)
        assert t >= 3
        # Every ball of radius t must be acyclic.
        for v in list(g.vertices())[:20]:
            ball = g.ball(v, t)
            sub, _ = g.induced_subgraph(ball)
            assert sub.is_forest()

    def test_tree_like_radius_of_forest(self):
        assert tree_like_radius(path_graph(5)) is None


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 60), st.integers(0, 2 ** 30))
def test_prufer_uniform_trees(n, seed):
    g = random_tree_prufer(n, random.Random(seed))
    assert g.is_tree()


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 40), st.integers(2, 6), st.integers(0, 2 ** 30))
def test_bounded_trees_hypothesis(n, cap, seed):
    g = random_tree_bounded_degree(n, cap, random.Random(seed))
    assert g.is_tree()
    assert g.max_degree <= cap

"""Property-based tests for the round-elimination operator: structural
invariants that must hold for *every* problem, not just the canned ones."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbounds.roundeliminator import (
    BipartiteProblem,
    round_eliminate,
)

LABELS = ["A", "B"]


def _configs(arity):
    return list(itertools.combinations_with_replacement(LABELS, arity))


@st.composite
def small_problems(draw):
    """Random 2-label problems with white degree 3, black degree 2."""
    white_all = _configs(3)
    black_all = _configs(2)
    white = draw(
        st.sets(st.sampled_from(white_all), min_size=0, max_size=4)
    )
    black = draw(
        st.sets(st.sampled_from(black_all), min_size=0, max_size=3)
    )
    return BipartiteProblem.make("random", 3, 2, white, black)


@settings(max_examples=60, deadline=None)
@given(small_problems())
def test_re_swaps_degrees(problem):
    r = round_eliminate(problem)
    assert r.white_degree == problem.black_degree
    assert r.black_degree == problem.white_degree


@settings(max_examples=60, deadline=None)
@given(small_problems())
def test_re_preserves_triviality(problem):
    """Speedup cannot destroy 0-round solvability: the singleton-set
    relabeling of a trivial solution stays trivial."""
    if problem.is_trivial():
        # The unpruned image keeps the all-singleton witness; the
        # pruned image may hide it behind a dominating configuration.
        assert round_eliminate(problem, prune=False).is_trivial()


@settings(max_examples=60, deadline=None)
@given(small_problems())
def test_re_preserves_emptiness(problem):
    """An unsolvable side stays unsolvable: a universal constraint over
    an empty target admits nothing."""
    if not problem.black:
        assert round_eliminate(problem).is_empty()


@settings(max_examples=60, deadline=None)
@given(small_problems())
def test_re_white_configs_are_universal_witnesses(problem):
    """Every allowed new-white configuration really is universally
    satisfying — re-check the definition against a direct evaluation."""
    r = round_eliminate(problem)

    def parse(label):
        return frozenset(x for x in label[1:-1].split(",") if x)

    for config in r.white:
        sets = [parse(x) for x in config]
        for choice in itertools.product(*sets):
            assert tuple(sorted(choice)) in problem.black


@settings(max_examples=60, deadline=None)
@given(small_problems())
def test_re_black_configs_have_witnesses(problem):
    r = round_eliminate(problem)

    def parse(label):
        return frozenset(x for x in label[1:-1].split(",") if x)

    for config in r.black:
        sets = [parse(x) for x in config]
        assert any(
            tuple(sorted(choice)) in problem.white
            for choice in itertools.product(*sets)
        )


@settings(max_examples=40, deadline=None)
@given(small_problems())
def test_re_is_deterministic(problem):
    a = round_eliminate(problem)
    b = round_eliminate(problem)
    assert a.white == b.white
    assert a.black == b.black
    assert a.labels == b.labels

"""Smoke tests: every example script must run end-to-end.

Run with small arguments so the whole module stays under a minute; each
script's own internal LCL checks are the real assertions.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *map(str, args)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", 800, 12)
    assert "RandLOCAL rounds" in out
    assert "verified" in out


def test_separation_experiment_help_size():
    # The script sweeps fixed sizes; delta is the only knob.  Use a
    # small delta so the deepest tree stays modest.
    out = run_example("separation_experiment.py", 9, timeout=420)
    assert "det rounds" in out
    assert "deterministic +" in out


def test_frequency_assignment():
    out = run_example("frequency_assignment.py", 300, 4)
    assert "channels" in out
    assert "verified" in out


def test_deadlock_free_routing():
    out = run_example("deadlock_free_routing.py", 200, 4)
    assert "sinks left" in out


def test_derandomization_demo():
    out = run_example("derandomization_demo.py")
    assert "seeds tried" in out
    assert "yes" in out


def test_cluster_scheduling():
    out = run_example("cluster_scheduling.py", 200, 4)
    assert "supervisors" in out
    assert "verified" in out


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "separation_experiment.py",
        "frequency_assignment.py",
        "deadlock_free_routing.py",
        "derandomization_demo.py",
        "cluster_scheduling.py",
    ],
)
def test_examples_exist_and_are_documented(script):
    path = EXAMPLES / script
    assert path.exists()
    text = path.read_text()
    assert text.startswith("#!/usr/bin/env python3")
    assert '"""' in text  # has a module docstring

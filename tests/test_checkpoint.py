"""In-run checkpointing: snapshot files, resume semantics, integrity.

The verify relation ``checkpoint-resume`` pins byte-identity across
every driver x backend x fault plan; these tests pin the mechanism
itself — file format and integrity hashing, torn-write loudness,
policy validation, slot lifecycle (fresh / restored / replayed /
fresh-tail), observer capability gating, and the LM012 unpicklable-
state diagnostic.
"""

import io
import os
import pickle
import random

import pytest

from repro.core import (
    Model,
    available_backend_names,
    observe_runs,
    run_local,
    use_backend,
)
from repro.core.algorithm import SyncAlgorithm
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    CheckpointSession,
    checkpointing,
    load_checkpoint,
    save_checkpoint,
    standalone_scope,
)
from repro.faults import FaultPlan, inject_faults
from repro.graphs.generators import random_tree_bounded_degree
from repro.obs import JsonlTraceObserver, MetricsObserver
from repro.obs.observer import BatchRunObserver

BACKENDS = sorted(available_backend_names())


class _Kill(Exception):
    """Injected mid-run death (stands in for SIGKILL in-process)."""


class KillSwitch(BatchRunObserver):
    """Counts delivered round batches; raises after ``kill_after``."""

    checkpoint_capable = True

    def __init__(self, kill_after=None):
        super().__init__()
        self.kill_after = kill_after
        self.seen = 0

    def checkpoint_state(self):
        return self.seen

    def restore_checkpoint(self, state):
        self.seen = 0 if state is None else int(state)

    def on_round_batch(self, batch):
        if batch.round_index < 0:
            return
        self.seen += 1
        if self.kill_after is not None and self.seen >= self.kill_after:
            raise _Kill(f"killed after {self.seen} batches")


class NoisyAccumulator(SyncAlgorithm):
    """Fixed-length RandLOCAL run whose outputs depend on every round's
    random draws and accumulated state — any resume that loses RNG
    state, ctx.state, or visible values changes the outputs."""

    name = "noisy-accumulator"

    def __init__(self, rounds=12):
        self.rounds = rounds

    def setup(self, ctx):
        ctx.state["acc"] = 0
        ctx.state["r"] = 0
        ctx.publish(ctx.random.randrange(1 << 16))

    def step(self, ctx, inbox):
        ctx.state["acc"] += sum(inbox) + ctx.random.randrange(1 << 16)
        ctx.state["r"] += 1
        if ctx.state["r"] >= self.rounds:
            ctx.halt(ctx.state["acc"] & 0xFFFFFF)
        else:
            ctx.publish(ctx.random.randrange(1 << 16))


class LambdaHoarder(SyncAlgorithm):
    """Stores a lambda in ctx.state: the LM012 anti-pattern."""

    name = "lambda-hoarder"

    def setup(self, ctx):
        ctx.state["fn"] = lambda x: x + 1
        ctx.state["r"] = 0
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.state["r"] += 1
        if ctx.state["r"] >= 3:
            ctx.halt(0)
        else:
            ctx.publish(0)


def tree(n=60, seed=5):
    return random_tree_bounded_degree(n, 4, random.Random(seed))


def run_noisy(rounds=12, seed=9, **kwargs):
    return run_local(
        tree(),
        NoisyAccumulator(rounds=rounds),
        Model.RAND,
        seed=seed,
        **kwargs,
    )


# ----------------------------------------------------------------------
# File format and integrity
# ----------------------------------------------------------------------
class TestFileFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "slot-0000.ckpt"
        payload = pickle.dumps({"hello": [1, 2, 3]})
        save_checkpoint(path, {"kind": "inflight", "slot": 0}, payload)
        header, value = load_checkpoint(path)
        assert header["kind"] == "inflight"
        assert header["schema"] == "repro.core.checkpoint"
        assert header["payload_len"] == len(payload)
        assert value == {"hello": [1, 2, 3]}

    def test_missing_file_is_loud(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_torn_write_is_loud(self, tmp_path):
        """A torn (truncated) checkpoint must fail its length check,
        never resume silently — the point of the atomic-replace
        discipline is that this can only happen to hand-damaged
        files."""
        path = tmp_path / "slot-0000.ckpt"
        save_checkpoint(
            path, {"kind": "inflight"}, pickle.dumps(list(range(1000)))
        )
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) - 100])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)
        # Torn before the payload even starts: no header newline.
        path.write_bytes(whole[:10])
        with pytest.raises(CheckpointError, match="no header line"):
            load_checkpoint(path)

    def test_bit_flip_fails_integrity_hash(self, tmp_path):
        path = tmp_path / "slot-0000.ckpt"
        save_checkpoint(path, {}, pickle.dumps("payload"))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="integrity hash"):
            load_checkpoint(path)

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "other.ckpt"
        path.write_bytes(b'{"schema": "something.else"}\n')
        with pytest.raises(CheckpointError, match="is not a"):
            load_checkpoint(path)

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "slot-0000.ckpt"
        payload = pickle.dumps(1)
        save_checkpoint(path, {}, payload)
        header, _ = load_checkpoint(path)
        import hashlib
        import json

        header["version"] = 99
        line = json.dumps(header, sort_keys=True).encode()
        path.write_bytes(line + b"\n" + payload)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)


class TestPolicyValidation:
    def test_needs_a_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="every_rounds and/or"):
            CheckpointPolicy(path=str(tmp_path))

    def test_rejects_bad_cadences(self, tmp_path):
        with pytest.raises(ValueError, match="every_rounds"):
            CheckpointPolicy(path=str(tmp_path), every_rounds=0)
        with pytest.raises(ValueError, match="every_seconds"):
            CheckpointPolicy(path=str(tmp_path), every_seconds=0.0)

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError, match="path"):
            CheckpointPolicy(path="", every_rounds=1)


# ----------------------------------------------------------------------
# Kill + resume on every backend (the mechanism behind the relation)
# ----------------------------------------------------------------------
def _observed_run(kill, rounds=12, seed=9):
    metrics = MetricsObserver()
    sink = io.StringIO()
    trace = JsonlTraceObserver(sink)
    outcome = None
    error = None
    with observe_runs(metrics, trace, kill):
        try:
            outcome = run_noisy(rounds=rounds, seed=seed)
        except _Kill as exc:
            error = exc
    return outcome, error, sink, metrics


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("plan", [None, "crash"])
def test_kill_resume_is_byte_identical(tmp_path, backend, plan):
    fault_plan = (
        None
        if plan is None
        else FaultPlan(seed=77, crash_rate=0.08, crash_round=1)
    )
    import contextlib

    def scoped(extra=None):
        stack = contextlib.ExitStack()
        stack.enter_context(use_backend(backend))
        if fault_plan is not None:
            stack.enter_context(inject_faults(fault_plan))
        if extra is not None:
            stack.enter_context(extra)
        return stack

    with scoped():
        baseline, err, base_sink, base_metrics = _observed_run(
            KillSwitch(None)
        )
    assert err is None

    with scoped(checkpointing(str(tmp_path), every_rounds=1)):
        _, err, kill_sink, _ = _observed_run(KillSwitch(5))
    assert err is not None, "the injected kill must fire"
    assert any(
        name.endswith(".ckpt") for name in os.listdir(tmp_path)
    ), "the killed run must leave an in-flight snapshot behind"

    resume_sink = io.StringIO()
    resume_sink.write(kill_sink.getvalue())
    metrics = MetricsObserver()
    trace = JsonlTraceObserver(resume_sink)
    with scoped(
        checkpointing(str(tmp_path), every_rounds=1, resume=True)
    ), observe_runs(metrics, trace, KillSwitch(None)):
        resumed = run_noisy()

    assert resumed == baseline
    assert resume_sink.getvalue() == base_sink.getvalue()
    assert metrics.summary() == base_metrics.summary()


@pytest.mark.parametrize("backend", BACKENDS)
def test_done_slot_replays_without_rerunning(tmp_path, backend):
    with use_backend(backend):
        with checkpointing(str(tmp_path), every_rounds=4) as scope:
            first = run_noisy()
        assert scope.events[-1]["action"] == "fresh"
        assert os.path.exists(tmp_path / "slot-0000.done")
        with checkpointing(
            str(tmp_path), every_rounds=4, resume=True
        ) as scope:
            replayed = run_noisy()
        assert scope.events == [{"slot": 0, "action": "replayed"}]
    assert replayed == first


def test_multi_slot_fresh_resume_does_not_rewind_twice(tmp_path):
    """Regression: a resume that finds *no* snapshots (killed before
    the first save) runs every slot fresh; only the first fresh slot
    may rewind the observers — a second rewind would truncate the
    first slot's freshly written trace."""

    def driver():
        a = run_noisy(rounds=6, seed=1)
        b = run_noisy(rounds=6, seed=2)
        return a, b

    sink = io.StringIO()
    with observe_runs(JsonlTraceObserver(sink)):
        baseline = driver()

    resumed_sink = io.StringIO()
    resumed_sink.write("stale bytes from a killed process\n")
    with checkpointing(
        str(tmp_path), every_rounds=1000, resume=True
    ) as scope, observe_runs(JsonlTraceObserver(resumed_sink)):
        resumed = driver()
    assert resumed == baseline
    assert resumed_sink.getvalue() == sink.getvalue()
    assert [e["action"] for e in scope.events] == ["fresh", "fresh"]


def test_multi_slot_resume_replays_finished_and_restores_observers(
    tmp_path,
):
    """Kill between slot 0 and slot 1: the resume must replay slot 0
    from its .done snapshot (observers restored to its end position)
    and run only slot 1 — landing on the uninterrupted bytes."""

    def driver(kill_second=False):
        a = run_noisy(rounds=6, seed=1)
        if kill_second:
            raise _Kill("died between the slots")
        b = run_noisy(rounds=6, seed=2)
        return a, b

    sink = io.StringIO()
    with observe_runs(JsonlTraceObserver(sink)):
        baseline = driver()

    kill_sink = io.StringIO()
    with pytest.raises(_Kill):
        with checkpointing(
            str(tmp_path), every_rounds=1
        ), observe_runs(JsonlTraceObserver(kill_sink)):
            driver(kill_second=True)

    resume_sink = io.StringIO()
    resume_sink.write(kill_sink.getvalue())
    with checkpointing(
        str(tmp_path), every_rounds=1, resume=True
    ) as scope, observe_runs(JsonlTraceObserver(resume_sink)):
        resumed = driver()
    assert resumed == baseline
    assert resume_sink.getvalue() == sink.getvalue()
    assert scope.events[0] == {"slot": 0, "action": "replayed"}


def test_stale_fingerprint_starts_fresh_not_wrong(tmp_path):
    """Same directory, different run identity (seed): the snapshot is
    rejected by fingerprint and the run starts fresh — it must land on
    the plain run's result, not resume into foreign state."""
    with checkpointing(str(tmp_path), every_rounds=1):
        with pytest.raises(_Kill):
            with observe_runs(KillSwitch(3)):
                run_noisy(seed=1)
    plain = run_noisy(seed=2)
    with checkpointing(
        str(tmp_path), every_rounds=1, resume=True
    ) as scope:
        resumed = run_noisy(seed=2)
    assert resumed == plain
    assert scope.events[0]["reason"] == "stale-ckpt"


def test_corrupted_snapshot_is_loud_on_resume(tmp_path):
    with checkpointing(str(tmp_path), every_rounds=1):
        with pytest.raises(_Kill):
            with observe_runs(KillSwitch(3)):
                run_noisy()
    path = tmp_path / "slot-0000.ckpt"
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with checkpointing(str(tmp_path), every_rounds=1, resume=True):
        with pytest.raises(CheckpointError, match="truncated"):
            run_noisy()


def test_every_seconds_cadence_saves(tmp_path):
    policy = CheckpointPolicy(
        path=str(tmp_path), every_seconds=1e-9, resume=False
    )
    run_noisy(checkpoint=policy)
    assert os.path.exists(tmp_path / "slot-0000.ckpt")
    assert os.path.exists(tmp_path / "slot-0000.done")


def test_run_local_checkpoint_kwarg_resumes(tmp_path):
    """The single-slot spelling: run_local(checkpoint=...) without an
    ambient scope."""
    baseline = run_noisy()
    policy = CheckpointPolicy(path=str(tmp_path), every_rounds=1)
    with pytest.raises(_Kill):
        with observe_runs(KillSwitch(4)):
            run_noisy(checkpoint=policy)
    resume = CheckpointPolicy(
        path=str(tmp_path), every_rounds=1, resume=True
    )
    with observe_runs(KillSwitch(None)):
        resumed = run_noisy(checkpoint=resume)
    assert resumed == baseline


# ----------------------------------------------------------------------
# Capability gating and diagnostics
# ----------------------------------------------------------------------
class NotCapable:
    """An observer with no checkpoint contract."""

    def on_run_start(self, info):
        pass


def test_non_capable_observer_fails_fast(tmp_path):
    with checkpointing(str(tmp_path), every_rounds=1):
        with observe_runs(NotCapable()):
            with pytest.raises(
                CheckpointError, match="not checkpoint-capable"
            ):
                run_noisy()


def test_incapable_backend_fails_fast(tmp_path):
    class NoSnapshots:
        name = "no-snapshots"
        capture_state = None
        restore_state = None

    policy = CheckpointPolicy(path=str(tmp_path), every_rounds=1)
    session = standalone_scope(policy).next_session()
    with pytest.raises(CheckpointError, match="does not support"):
        session.bind(NoSnapshots(), (), {})


def test_observer_arity_mismatch_is_loud(tmp_path):
    with checkpointing(str(tmp_path), every_rounds=1):
        with pytest.raises(_Kill):
            with observe_runs(MetricsObserver(), KillSwitch(3)):
                run_noisy()
    with checkpointing(str(tmp_path), every_rounds=1, resume=True):
        with observe_runs(MetricsObserver()):
            with pytest.raises(
                CheckpointError, match="observer position"
            ):
                run_noisy()


def test_engine_format_mismatch_is_loud(tmp_path):
    policy = CheckpointPolicy(path=str(tmp_path), every_rounds=1)
    session = standalone_scope(policy).next_session()
    session._engine_payload = {"format": "vector"}
    with pytest.raises(
        CheckpointError, match="same backend configuration"
    ):
        session.engine_payload("scalar")


def test_unpicklable_ctx_state_names_lm012(tmp_path):
    with checkpointing(str(tmp_path), every_rounds=1):
        with pytest.raises(CheckpointError, match="LM012"):
            run_local(tree(), LambdaHoarder(), Model.DET)


def test_heartbeat_reports_saves(tmp_path):
    beats = []
    policy = CheckpointPolicy(
        path=str(tmp_path),
        every_rounds=2,
        heartbeat=beats.append,
        heartbeat_seconds=1e9,
    )
    run_noisy(checkpoint=policy)
    saved = [b for b in beats if b.get("saved")]
    assert saved and all(b["slot"] == 0 for b in saved)
    assert [b["rounds"] for b in saved] == sorted(
        b["rounds"] for b in saved
    )

"""The pluggable backend registry and the vectorized engine backend.

Covers the selection machinery itself (precedence chain, env var,
unknown names, unavailable extras), the vectorized backend's fallback
rules, and the byte-level artifacts the backend contract promises:
identical JSONL trace streams and backend-pinned sweep journals.

Everything here runs on a numpy-less install too: vectorized-specific
cases skip (never fail) when the ``[perf]`` extra is absent.
"""

import io
import random

import pytest

from repro.algorithms.linial import LinialColoring
from repro.algorithms.rand_tree_coloring import (
    ColorBiddingAlgorithm,
    ColorBiddingConfig,
)
from repro.core import (
    BACKEND_ENV_VAR,
    Model,
    ReproError,
    available_backend_names,
    backend_names,
    current_backend_name,
    get_backend,
    register_backend,
    run_local,
    use_backend,
)
from repro.core.backend import _REGISTRY
from repro.faults import FaultPlan
from repro.graphs.generators import cycle_graph, random_tree_bounded_degree

NUMPY_AVAILABLE = "vectorized" in available_backend_names()

needs_vectorized = pytest.mark.skipif(
    not NUMPY_AVAILABLE,
    reason="vectorized backend unavailable ([perf] extra not installed)",
)


@pytest.fixture
def scratch_backend():
    """Register a temporary backend; restore the registry afterwards."""
    registered = []

    def add(name, loader, description=""):
        assert name not in _REGISTRY
        register_backend(name, loader, description=description)
        registered.append(name)
        return get_backend(name)

    yield add
    for name in registered:
        del _REGISTRY[name]


def _color_bidding_tree(n=200, seed=1):
    graph = random_tree_bounded_degree(n, 9, random.Random(seed))
    return graph, {"config": ColorBiddingConfig(), "main_palette": 6}


# ----------------------------------------------------------------------
# Registry and selection precedence
# ----------------------------------------------------------------------
class TestRegistry:
    def test_shipped_backends_registered(self):
        names = backend_names()
        assert "fast" in names
        assert "reference" in names
        assert "vectorized" in names
        assert "sharded" in names

    def test_sharded_backend_needs_no_extras(self):
        # Pure stdlib multiprocessing: available on every install.
        assert "sharded" in available_backend_names()

    def test_fast_and_reference_always_available(self):
        available = available_backend_names()
        assert "fast" in available
        assert "reference" in available

    def test_unknown_backend_name_raises_with_known_set(self):
        with pytest.raises(ReproError, match="unknown engine backend"):
            get_backend("warp-drive")
        with pytest.raises(ReproError, match="fast"):
            get_backend("warp-drive")

    def test_run_local_rejects_unknown_backend(self):
        with pytest.raises(ReproError, match="unknown engine backend"):
            run_local(
                cycle_graph(4),
                LinialColoring(),
                Model.DET,
                backend="warp-drive",
            )

    def test_use_backend_rejects_unknown_name_eagerly(self):
        with pytest.raises(ReproError, match="unknown engine backend"):
            with use_backend("warp-drive"):
                pass  # pragma: no cover — must not be reached

    def test_unavailable_backend_skipped_not_failed(self, scratch_backend):
        def loader():
            raise ReproError(
                "the 'phantom' backend requires a missing extra"
            )

        backend = scratch_backend("phantom", loader)
        assert not backend.available()
        assert "phantom" in backend_names()
        assert "phantom" not in available_backend_names()
        # Selecting it is allowed; the run itself raises the guidance.
        with use_backend("phantom"):
            with pytest.raises(ReproError, match="missing extra"):
                run_local(cycle_graph(4), LinialColoring(), Model.DET)

    def test_replacing_the_default_backend_is_honored(self):
        """register_backend("fast", ...) replaces the default: every
        selection route (default, explicit, ambient) must route through
        the registry entry, not a hardwired engine."""
        calls = []
        original = _REGISTRY["fast"]

        def probe_runner(*args, **kwargs):
            calls.append("probe")
            return original.load()(*args, **kwargs)

        register_backend(
            "fast", lambda: probe_runner, description="probe override"
        )
        try:
            graph = cycle_graph(4)
            run_local(graph, LinialColoring(), Model.DET)
            run_local(
                graph, LinialColoring(), Model.DET, backend="fast"
            )
            with use_backend("fast"):
                run_local(graph, LinialColoring(), Model.DET)
        finally:
            _REGISTRY["fast"] = original
        assert calls == ["probe", "probe", "probe"]

    def test_vectorized_loader_guidance_without_numpy(self, monkeypatch):
        """The loader's ImportError branch names the install command."""
        import importlib

        from repro.core import engine

        def refuse(name):
            raise ImportError("No module named 'numpy'")

        monkeypatch.setattr(importlib, "import_module", refuse)
        with pytest.raises(ReproError, match=r"repro\[perf\]"):
            engine._load_vectorized_backend()


class TestSelectionPrecedence:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert current_backend_name() == "fast"

    def test_env_var_beats_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert current_backend_name() == "reference"

    def test_ambient_scope_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        with use_backend("fast"):
            assert current_backend_name() == "fast"
        assert current_backend_name() == "reference"

    def test_scopes_nest_innermost_wins(self):
        with use_backend("reference"):
            with use_backend("fast"):
                assert current_backend_name() == "fast"
            assert current_backend_name() == "reference"

    def test_scope_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_backend("reference"):
                raise RuntimeError("boom")
        assert current_backend_name() == "fast"

    def test_explicit_argument_beats_ambient(self, scratch_backend):
        calls = []

        def probe_runner(*args, **kwargs):
            calls.append("probe")
            from repro.core.engine import _run_local_fast

            return _run_local_fast(*args, **kwargs)

        scratch_backend("probe", lambda: probe_runner)
        with use_backend("reference"):
            run_local(
                cycle_graph(4),
                LinialColoring(),
                Model.DET,
                backend="probe",
            )
        assert calls == ["probe"]

    def test_env_var_selects_run_local_backend(
        self, monkeypatch, scratch_backend
    ):
        calls = []

        def probe_runner(*args, **kwargs):
            calls.append("probe")
            from repro.core.engine import _run_local_fast

            return _run_local_fast(*args, **kwargs)

        scratch_backend("probe", lambda: probe_runner)
        monkeypatch.setenv(BACKEND_ENV_VAR, "probe")
        run_local(cycle_graph(4), LinialColoring(), Model.DET)
        assert calls == ["probe"]


# ----------------------------------------------------------------------
# Vectorized backend: kernel path and fallback rules
# ----------------------------------------------------------------------
@needs_vectorized
class TestVectorizedBackend:
    def test_kernel_registered_for_color_bidding(self):
        from repro.backends.vectorized import kernel_for

        assert kernel_for(ColorBiddingAlgorithm()) is not None

    def test_supports_veto_large_palette(self):
        """Palettes beyond the int64 bitmask width fall back — and the
        fallback result still matches the fast engine bit-for-bit."""
        from repro.backends.vectorized import run_local_vectorized

        graph, params = _color_bidding_tree()
        params = dict(params, main_palette=70)
        fast = run_local(
            graph, ColorBiddingAlgorithm(), Model.RAND, seed=3,
            global_params=params, trace=True,
        )
        vec = run_local_vectorized(
            graph, ColorBiddingAlgorithm(), Model.RAND, seed=3,
            global_params=params, trace=True,
        )
        assert fast.outputs == vec.outputs
        assert fast.trace == vec.trace

    def test_crash_faults_identical_on_kernel_path(self):
        graph, params = _color_bidding_tree()
        plan = FaultPlan(
            seed=5, crashes={3: 1}, crash_rate=0.05, crash_round=2
        )
        fast = run_local(
            graph, ColorBiddingAlgorithm(), Model.RAND, seed=9,
            global_params=params, trace=True, fault_plan=plan,
        )
        vec = run_local(
            graph, ColorBiddingAlgorithm(), Model.RAND, seed=9,
            global_params=params, trace=True, fault_plan=plan,
            backend="vectorized",
        )
        assert fast.outputs == vec.outputs
        assert fast.failures == vec.failures
        assert fast.trace == vec.trace
        assert fast.failures  # the plan really crashed someone

    def _linial_sparse_ids(self, n=30):
        """Sparse IDs in a 2^20 space: a 3-stage schedule, so a color
        frozen by an early crash can be out of range for later stages."""
        graph = cycle_graph(n)
        ids = [(v * 34567 + 11) % (1 << 20) for v in range(n)]
        assert len(set(ids)) == n
        return graph, ids, {"id_space": 1 << 20}

    def _forbid_fallback(self, monkeypatch):
        from repro.backends import vectorized

        def boom(*args, **kwargs):  # pragma: no cover — must not run
            raise AssertionError("unexpected fallback to fast engine")

        monkeypatch.setattr(vectorized, "_run_local_fast", boom)

    def test_linial_crash_faults_identical_on_kernel_path(
        self, monkeypatch
    ):
        """A vertex crashed mid-schedule keeps publishing its frozen
        color; neighbors must recolor against it exactly as the scalar
        engines do — on the kernel path, not via fallback."""
        graph, ids, params = self._linial_sparse_ids()
        plan = FaultPlan(seed=5, crashes={3: 1, 11: 1})
        fast = run_local(
            graph, LinialColoring(), Model.DET, ids=ids,
            global_params=params, trace=True, fault_plan=plan,
        )
        self._forbid_fallback(monkeypatch)
        vec = run_local(
            graph, LinialColoring(), Model.DET, ids=ids,
            global_params=params, trace=True, fault_plan=plan,
            backend="vectorized",
        )
        assert fast.outputs == vec.outputs
        assert fast.failures == vec.failures
        assert fast.trace == vec.trace
        assert fast.failures  # the plan really crashed someone

    def test_linial_stale_crash_color_raises_identically(self):
        """A round-0 crash freezes the published ID, which is out of
        range for the stage-1 cover-free family — the scalar path
        raises ValueError from cover_free_set, and the kernel must
        raise the identical error."""
        graph, ids, params = self._linial_sparse_ids()
        plan = FaultPlan(seed=5, crashes={3: 0})
        outcomes = []
        for backend in ("fast", "vectorized", "reference"):
            with pytest.raises(ValueError, match="out of range") as exc:
                run_local(
                    graph, LinialColoring(), Model.DET, ids=ids,
                    global_params=params, fault_plan=plan,
                    backend=backend,
                )
            outcomes.append(str(exc.value))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_oriented_linial_crash_faults_identical(self, monkeypatch):
        from repro.algorithms.linial import OrientedLinialColoring
        from repro.graphs.generators import random_tree_prufer

        graph = random_tree_prufer(40, random.Random(3))
        parent = {0: None}
        order, seen, head = [0], {0}, 0
        while head < len(order):
            v = order[head]
            head += 1
            for u in graph.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    parent[u] = v
                    order.append(u)
        inputs = [
            {
                "out_ports": (
                    [graph.port_of(v, parent[v])]
                    if parent[v] is not None
                    else []
                )
            }
            for v in graph.vertices()
        ]
        ids = [(v * 9176 + 5) % (1 << 18) for v in range(40)]
        params = {"out_degree": 1, "id_space": 1 << 18}
        plan = FaultPlan(seed=1, crashes={0: 0, 9: 2})
        fast = run_local(
            graph, OrientedLinialColoring(), Model.DET, ids=ids,
            node_inputs=inputs, global_params=params, trace=True,
            fault_plan=plan,
        )
        self._forbid_fallback(monkeypatch)
        vec = run_local(
            graph, OrientedLinialColoring(), Model.DET, ids=ids,
            node_inputs=inputs, global_params=params, trace=True,
            fault_plan=plan, backend="vectorized",
        )
        assert fast.outputs == vec.outputs
        assert fast.failures == vec.failures
        assert fast.trace == vec.trace

    def test_crash_plan_falls_back_without_declared_support(
        self, monkeypatch
    ):
        """Kernels that do not declare ``handles_crashes`` must leave
        the vectorized path whenever the plan crashes anybody — and the
        fallback result still matches the fast engine."""
        from repro.algorithms import kernels
        from repro.backends import vectorized

        calls = []
        original = vectorized._run_local_fast

        def counting(*args, **kwargs):
            calls.append("fast")
            return original(*args, **kwargs)

        monkeypatch.setattr(vectorized, "_run_local_fast", counting)
        monkeypatch.setattr(
            kernels.LinialKernel, "handles_crashes", False
        )
        graph, ids, params = self._linial_sparse_ids()
        plan = FaultPlan(seed=5, crashes={3: 1})
        fast = run_local(
            graph, LinialColoring(), Model.DET, ids=ids,
            global_params=params, trace=True, fault_plan=plan,
        )
        vec = run_local(
            graph, LinialColoring(), Model.DET, ids=ids,
            global_params=params, trace=True, fault_plan=plan,
            backend="vectorized",
        )
        assert calls == ["fast"]
        assert fast.outputs == vec.outputs
        assert fast.trace == vec.trace

    def test_message_faults_fall_back_and_match(self):
        graph, params = _color_bidding_tree(n=80)
        plan = FaultPlan(seed=2, drop_rate=0.05, round_budget=256)
        outcomes = []
        for backend in ("fast", "vectorized"):
            try:
                result = run_local(
                    graph, ColorBiddingAlgorithm(), Model.RAND,
                    seed=4, global_params=params, fault_plan=plan,
                    backend=backend,
                )
                outcomes.append(("ok", result.outputs, result.rounds))
            except Exception as exc:  # noqa: BLE001 — outcome folding
                outcomes.append(("error", f"{type(exc).__name__}: {exc}"))
        assert outcomes[0] == outcomes[1]


# ----------------------------------------------------------------------
# popcount: numpy>=2 fast path and the SWAR fallback for numpy 1.x
# ----------------------------------------------------------------------
@needs_vectorized
class TestPopcount:
    def _reference(self, masks):
        return [bin(m).count("1") for m in masks]

    def test_swar_fallback_matches_python(self):
        import numpy as np

        from repro.backends.vectorized import _popcount_swar, popcount

        rng = random.Random(99)
        masks = [0, 1, 2, 3, (1 << 62) - 1, 2**63 - 1]
        masks += [rng.getrandbits(62) for _ in range(500)]
        arr = np.asarray(masks, dtype=np.int64)
        expected = self._reference(masks)
        # Both the numpy 1.x fallback and whatever ``popcount`` resolved
        # to on this install must agree with pure-python counting.
        assert _popcount_swar(arr).tolist() == expected
        assert popcount(arr).tolist() == expected
        assert _popcount_swar(arr).dtype == np.int64


# ----------------------------------------------------------------------
# VectorMT: the vectorized per-vertex random streams
# ----------------------------------------------------------------------
@needs_vectorized
class TestVectorMT:
    """Word-exact parity with ``[random.Random(s) for s in seeds]`` —
    the property that lets kernels replay scalar draw sequences."""

    def _pair(self, seeds):
        import numpy as np

        from repro.backends.mt19937 import VectorMT

        arr = np.array(seeds, dtype=np.uint64)
        return VectorMT(arr), [random.Random(int(s)) for s in seeds]

    def test_interleaved_draws_match_across_block_boundary(self):
        import numpy as np

        master = random.Random(2024)
        seeds = [master.getrandbits(64) for _ in range(23)]
        vmt, scalars = self._pair(seeds)
        verts = np.arange(len(seeds))
        script = random.Random(7)
        for _ in range(420):  # > 624 words consumed: crosses a refill
            kind = script.randrange(3)
            if kind == 0:
                assert (
                    vmt.random(verts)
                    == np.array([r.random() for r in scalars])
                ).all()
            elif kind == 1:
                sizes = np.array(
                    [script.randrange(1, 40) for _ in scalars]
                )
                assert (
                    vmt.randrange(verts, sizes)
                    == np.array(
                        [
                            r.randrange(int(k))
                            for r, k in zip(scalars, sizes)
                        ]
                    )
                ).all()
            else:
                counts = np.array(
                    [script.randrange(0, 5) for _ in scalars]
                )
                expected = [
                    r.random()
                    for r, c in zip(scalars, counts)
                    for _ in range(int(c))
                ]
                got = vmt.random_runs(verts, counts)
                assert got.tolist() == expected

    def test_subset_draws_desynchronize_positions_safely(self):
        import numpy as np

        vmt, scalars = self._pair([10**18 + v for v in range(9)])
        verts = np.arange(9)
        subset = np.array([0, 3, 8])
        for _ in range(400):  # subset streams refill before the rest
            assert (
                vmt.random(subset)
                == np.array([scalars[int(v)].random() for v in subset])
            ).all()
        assert (
            vmt.random(verts)
            == np.array([r.random() for r in scalars])
        ).all()

    def test_edge_seeds_use_scalar_seeding_path(self):
        """Seeds below 2³² have a different init_by_array key length."""
        import numpy as np

        seeds = [0, 1, 2**32 - 1, 2**32, 2**64 - 1]
        vmt, scalars = self._pair(seeds)
        verts = np.arange(len(seeds))
        for _ in range(700):
            assert (
                vmt.random(verts)
                == np.array([r.random() for r in scalars])
            ).all()

    def test_randrange_one_still_consumes_a_word(self):
        import numpy as np

        vmt, scalars = self._pair([42, 43])
        verts = np.arange(2)
        ones = np.array([1, 1])
        assert (
            vmt.randrange(verts, ones)
            == np.array([r.randrange(1) for r in scalars])
        ).all()
        assert (
            vmt.random(verts)
            == np.array([r.random() for r in scalars])
        ).all()

    def test_randrange_empty_matches_stdlib_error(self):
        import numpy as np

        vmt, _ = self._pair([5])
        with pytest.raises(ValueError, match="empty range"):
            vmt.randrange(np.array([0]), np.array([0]))


# ----------------------------------------------------------------------
# Byte-level artifacts: JSONL traces and sweep journals
# ----------------------------------------------------------------------
class TestTraceBytes:
    def _trace_bytes(self, backend):
        from repro.obs import JsonlTraceObserver

        graph, params = _color_bidding_tree(n=60)
        sink = io.StringIO()
        observer = JsonlTraceObserver(sink, node_steps=True)
        run_local(
            graph, ColorBiddingAlgorithm(), Model.RAND, seed=7,
            global_params=params, observers=[observer],
            backend=backend,
        )
        return sink.getvalue()

    def test_jsonl_trace_bytes_identical_across_backends(self):
        streams = {
            name: self._trace_bytes(name)
            for name in available_backend_names()
        }
        baseline = streams["fast"]
        assert baseline  # the observer really wrote events
        for name, stream in streams.items():
            assert stream == baseline, f"backend {name!r} trace differs"


class TestSweepBackendThreading:
    def _measure(self, x, seed):
        graph = cycle_graph(int(x))
        result = run_local(
            graph, LinialColoring(), Model.DET,
            ids=list(range(int(x))),
        )
        return result.rounds + seed

    def test_backend_pinned_results_match_default(self):
        from repro.analysis.experiments import run_sweep

        base = run_sweep(
            "s", [8.0, 12.0], self._measure, seeds=(0, 1)
        )
        pinned = run_sweep(
            "s", [8.0, 12.0], self._measure, seeds=(0, 1),
            backend="reference",
        )
        assert base.as_dict() == pinned.as_dict()

    def test_unknown_backend_rejected_before_any_cell_runs(self):
        from repro.analysis.experiments import run_sweep

        with pytest.raises(ReproError, match="unknown engine backend"):
            run_sweep("s", [6.0], self._measure, backend="warp-drive")

    def test_journal_fingerprint_pins_backend(self, tmp_path):
        """Resuming a journaled sweep under a different backend must be
        refused — never silently mixed."""
        from repro.analysis.experiments import run_sweep

        journal = str(tmp_path / "sweep.jsonl")
        run_sweep(
            "s", [6.0], self._measure, seeds=(0,), journal=journal,
            backend="fast",
        )
        with pytest.raises(ValueError, match="fingerprint"):
            run_sweep(
                "s", [6.0], self._measure, seeds=(0,),
                journal=journal, backend="reference",
            )

    def test_ambient_scope_is_captured_in_fingerprint(self, tmp_path):
        from repro.analysis.experiments import run_sweep

        journal = str(tmp_path / "sweep.jsonl")
        with use_backend("reference"):
            run_sweep(
                "s", [6.0], self._measure, seeds=(0,), journal=journal
            )
        # Same ambient backend resumes cleanly …
        with use_backend("reference"):
            run_sweep(
                "s", [6.0], self._measure, seeds=(0,), journal=journal
            )
        # … the default (fast) does not.
        with pytest.raises(ValueError, match="fingerprint"):
            run_sweep(
                "s", [6.0], self._measure, seeds=(0,), journal=journal
            )

    @needs_vectorized
    def test_pooled_sweep_threads_vectorized_backend(self):
        """Fork-pool children must run under the parent's backend; with
        the deterministic contract the pooled vectorized sweep equals
        the serial fast sweep bit-for-bit."""
        from repro.analysis.experiments import run_sweep

        def measure(x, seed):
            graph = random_tree_bounded_degree(
                int(x), 9, random.Random(seed)
            )
            result = run_local(
                graph,
                ColorBiddingAlgorithm(),
                Model.RAND,
                seed=seed,
                global_params={
                    "config": ColorBiddingConfig(),
                    "main_palette": 6,
                },
            )
            return sum(1 for out in result.outputs if out == -1)

        serial = run_sweep("bad", [60.0, 90.0], measure, seeds=(0, 1))
        pooled = run_sweep(
            "bad", [60.0, 90.0], measure, seeds=(0, 1),
            workers=2, backend="vectorized",
        )
        assert serial.as_dict() == pooled.as_dict()


# ----------------------------------------------------------------------
# Backend-surface drift: every registered backend on every surface
# ----------------------------------------------------------------------
class TestBackendSurfaces:
    """The meta-test for backend-surface drift: registering a backend
    must make it appear on every user-facing surface that names
    backends — the CLI choices, the bench rows, the sweep journal
    fingerprint, and the supervise degradation ladder.  A backend
    missing from any of these fails here, not in production."""

    def test_cli_backend_choices_track_the_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        action = next(
            a
            for a in parser._actions
            if "--backend" in getattr(a, "option_strings", ())
        )
        assert tuple(action.choices) == tuple(backend_names())

    def test_cli_shards_flag_exports_the_env_var(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro import cli
        from repro.backends.sharded import SHARDS_ENV_VAR

        monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
        cli.main(["--shards", "3", "report", str(tmp_path)])
        assert os.environ.get(SHARDS_ENV_VAR) == "3"
        monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)

    def test_cli_rejects_nonpositive_shards(self, tmp_path):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main(["--shards", "0", "report", str(tmp_path)])

    def test_bench_rows_cover_every_available_backend(self):
        from repro.analysis.perf import backend_engine_metrics

        timings = backend_engine_metrics(n=240, repeats=1)
        assert set(timings) == set(available_backend_names())

    def test_sweep_journal_fingerprint_accepts_every_backend(
        self, tmp_path
    ):
        """The journal fingerprint must round-trip every registered
        backend name: same backend resumes cleanly, a different one is
        refused."""
        from repro.analysis.experiments import run_sweep

        def measure(x, seed):
            graph = cycle_graph(int(x))
            result = run_local(
                graph, LinialColoring(), Model.DET,
                ids=list(range(int(x))),
            )
            return result.rounds + seed

        for name in available_backend_names():
            journal = str(tmp_path / f"sweep-{name}.jsonl")
            run_sweep(
                "s", [6.0], measure, seeds=(0,), journal=journal,
                backend=name,
            )
            run_sweep(  # same backend: clean resume
                "s", [6.0], measure, seeds=(0,), journal=journal,
                backend=name,
            )
            other = next(
                n for n in available_backend_names() if n != name
            )
            with pytest.raises(ValueError, match="fingerprint"):
                run_sweep(
                    "s", [6.0], measure, seeds=(0,), journal=journal,
                    backend=other,
                )

    def test_supervise_degradation_backend_is_registered(self):
        from repro.supervise import DEGRADATION_BACKEND

        assert DEGRADATION_BACKEND in backend_names()
        assert DEGRADATION_BACKEND in available_backend_names()

    def test_every_backend_supports_checkpoint_capture(self):
        """The checkpoint/supervise stack requires capture/restore
        from every registered backend (PR 9's capability contract)."""
        for name in backend_names():
            backend = get_backend(name)
            assert backend.capture_state is not None, name
            assert backend.restore_state is not None, name

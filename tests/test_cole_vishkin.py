"""Tests for Cole–Vishkin 3-coloring of oriented rings and paths."""

import pytest

from repro.algorithms.cole_vishkin import (
    ColeVishkinColoring,
    cv_schedule,
    cv_step,
    ring_orientation_inputs,
)
from repro.core import Model, run_local
from repro.core.ids import shuffled_ids
from repro.graphs.generators import cycle_graph, path_graph, ring_of_cycles
from repro.lcl import KColoring


class TestBitTrick:
    def test_step_differs_from_successor(self):
        for a in range(1, 64):
            for b in range(64):
                if a == b:
                    continue
                na = cv_step(a, b)
                nb = cv_step(b, a)
                # The classic guarantee is one-directional per edge; in
                # a consistently oriented ring each vertex applies it
                # against its own successor, which suffices.  Check the
                # defining property: new color encodes a differing bit.
                i, bit = divmod(na, 2)
                assert ((a >> i) & 1) == bit
                assert ((b >> i) & 1) != bit
                del nb

    def test_step_requires_difference(self):
        with pytest.raises(ValueError):
            cv_step(5, 5)

    def test_schedule_reaches_six(self):
        schedule = cv_schedule(1 << 20)
        assert schedule[-1] <= 6
        assert schedule[0] == 1 << 20

    def test_schedule_is_log_star_short(self):
        assert len(cv_schedule(1 << 60)) <= 8


class TestAlgorithm:
    @pytest.mark.parametrize("n", [3, 10, 47, 256, 1001])
    def test_cycles(self, n):
        g = cycle_graph(n)
        inputs = ring_orientation_inputs(g)
        result = run_local(g, ColeVishkinColoring(), Model.DET, node_inputs=inputs)
        assert KColoring(3).is_solution(g, result.outputs)

    @pytest.mark.parametrize("n", [2, 9, 100])
    def test_paths(self, n):
        g = path_graph(n)
        inputs = ring_orientation_inputs(g)
        result = run_local(g, ColeVishkinColoring(), Model.DET, node_inputs=inputs)
        assert KColoring(3).is_solution(g, result.outputs)

    def test_disconnected_cycles(self):
        g = ring_of_cycles(4, 7)
        inputs = ring_orientation_inputs(g)
        result = run_local(g, ColeVishkinColoring(), Model.DET, node_inputs=inputs)
        assert KColoring(3).is_solution(g, result.outputs)

    def test_shuffled_ids(self, rng):
        g = cycle_graph(100)
        inputs = ring_orientation_inputs(g)
        ids = shuffled_ids(100, rng)
        result = run_local(
            g, ColeVishkinColoring(), Model.DET, ids=ids, node_inputs=inputs
        )
        assert KColoring(3).is_solution(g, result.outputs)

    def test_round_count_log_star(self):
        rounds = []
        for n in (16, 1024, 65536):
            g = cycle_graph(n)
            inputs = ring_orientation_inputs(g)
            result = run_local(
                g, ColeVishkinColoring(), Model.DET, node_inputs=inputs
            )
            rounds.append(result.rounds)
        assert rounds[-1] <= rounds[0] + 3
        assert rounds[-1] <= 12

    def test_orientation_inputs_consistent(self):
        g = cycle_graph(9)
        inputs = ring_orientation_inputs(g)
        # Following successors must traverse the whole cycle.
        v = 0
        seen = set()
        for _ in range(9):
            seen.add(v)
            port = inputs[v]["successor_port"]
            v = g.endpoint(v, port)
        assert seen == set(range(9))

"""Tests for the plain-text chart renderers."""

from repro.analysis.charts import ascii_chart, growth_summary, sparkline
from repro.analysis.experiments import Series


def _series(name, values):
    s = Series(name)
    for i, v in enumerate(values):
        s.add(i, [v])
    return s


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_extremes_map_to_ends(self):
        line = sparkline([10, 0, 10])
        assert line == "█▁█"


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart([]) == "(no data)"

    def test_contains_markers_and_legend(self):
        a = _series("grows", [1, 2, 4, 8])
        b = _series("flat", [3, 3, 3, 3])
        chart = ascii_chart([a, b])
        assert "*" in chart and "o" in chart
        assert "grows" in chart and "flat" in chart

    def test_height_respected(self):
        a = _series("s", [0, 10])
        chart = ascii_chart([a], height=5)
        # 5 grid rows + axis + legend.
        assert len(chart.splitlines()) == 7

    def test_max_value_on_top_row(self):
        a = _series("s", [0, 100])
        top_row = ascii_chart([a], height=4).splitlines()[0]
        assert "*" in top_row
        assert "100.0" in top_row


class TestGrowthSummary:
    def test_format(self):
        a = _series("rounds", [10, 20, 40])
        text = growth_summary(a)
        assert text.startswith("rounds:")
        assert "10 -> 40" in text

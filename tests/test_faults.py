"""Fault-injection tests: seeded adversaries must perturb both engines
identically, surface as structured events, and power the E6F
failure-rate experiment.

The determinism contract under test (see ``docs/robustness.md``): every
probabilistic fault decision is a pure hash of ``(plan seed, round,
vertex, port, stream)``, never a sequential RNG draw — so the fast and
reference engines, which visit vertices in different orders, inject the
exact same faults and stay bit-identical down to their trace files.
"""

import json

import pytest

from repro.core import Model, SimulationError, run_local
from repro.core.algorithm import SyncAlgorithm
from repro.core.engine import run_local_reference
from repro.core.errors import AlgorithmFailure
from repro.faults import (
    BudgetExceededError,
    FaultEvent,
    FaultPlan,
    active_fault_plan,
    inject_faults,
    mix64,
    unit_uniform,
)
from repro.graphs.generators import cycle_graph
from repro.obs import JsonlTraceObserver, MetricsObserver


class InboxRecorder(SyncAlgorithm):
    """Publishes its round counter each round; halts after
    ``ctx.globals["rounds"]`` steps with everything it received.

    Deliberately tolerant of ``None``/garbage payloads, so delivery
    faults show up in the *output* instead of crashing node code —
    exactly what these tests need to observe.
    """

    name = "inbox-recorder"

    def setup(self, ctx):
        ctx.state["seen"] = []
        ctx.state["round"] = 0
        ctx.publish(("r", 0))

    def step(self, ctx, inbox):
        ctx.state["seen"].append(tuple(inbox[port] for port in ctx.ports))
        r = ctx.state["round"] = ctx.state["round"] + 1
        if r == ctx.globals["rounds"]:
            ctx.halt(tuple(ctx.state["seen"]))
        else:
            ctx.publish(("r", r))


def run_recorder(graph, rounds, plan=None, engine=run_local, observers=None):
    return engine(
        graph,
        InboxRecorder(),
        Model.DET,
        global_params={"rounds": rounds},
        fault_plan=plan,
        observers=observers,
    )


def corrupt_hook(payload):
    return ("corrupted",)


class TestFaultPlan:
    def test_rates_validated(self):
        for name in ("crash_rate", "drop_rate", "duplicate_rate"):
            with pytest.raises(ValueError, match=name):
                FaultPlan(**{name: 1.5})
            with pytest.raises(ValueError, match=name):
                FaultPlan(**{name: -0.1})

    def test_corrupt_rate_needs_hook(self):
        with pytest.raises(ValueError, match="corrupt"):
            FaultPlan(corrupt_rate=0.5)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="round_budget"):
            FaultPlan(round_budget=-1)

    def test_negative_crash_round_rejected(self):
        with pytest.raises(ValueError, match="crashes"):
            FaultPlan(crashes={3: -2})

    def test_is_noop(self):
        assert FaultPlan().is_noop
        assert not FaultPlan(drop_rate=0.1).is_noop
        assert not FaultPlan(crashes={0: 1}).is_noop
        assert not FaultPlan(round_budget=10).is_noop


class TestHashDeterminism:
    def test_mix64_is_a_pure_function(self):
        assert mix64(7, 1, 2, 3) == mix64(7, 1, 2, 3)
        assert mix64(7, 1, 2, 3) != mix64(8, 1, 2, 3)
        assert mix64(7, 1, 2, 3) != mix64(7, 3, 2, 1)

    def test_unit_uniform_range_and_spread(self):
        draws = [unit_uniform(0, r, v) for r in range(20) for v in range(20)]
        assert all(0.0 <= u < 1.0 for u in draws)
        # 400 hash draws should look roughly uniform, not constant.
        assert 0.3 < sum(draws) / len(draws) < 0.7


class TestDeliveryFaults:
    def test_drop_rate_one_blanks_every_inbox(self):
        result = run_recorder(
            cycle_graph(6), rounds=2, plan=FaultPlan(drop_rate=1.0)
        )
        for output in result.outputs:
            assert output == (((None, None),) * 2)

    def test_duplicate_rate_one_redelivers_stale_payloads(self):
        result = run_recorder(
            cycle_graph(6), rounds=3, plan=FaultPlan(duplicate_rate=1.0)
        )
        for output in result.outputs:
            # Round 0 has no previous delivery (the first delivery is
            # its own duplicate); every later round sees the previous
            # round's payload again — stale by exactly one round.
            assert output == (
                (("r", 0), ("r", 0)),
                (("r", 0), ("r", 0)),
                (("r", 1), ("r", 1)),
            )

    def test_corrupt_hook_rewrites_payloads(self):
        plan = FaultPlan(corrupt_rate=1.0, corrupt=corrupt_hook)
        result = run_recorder(cycle_graph(6), rounds=1, plan=plan)
        for output in result.outputs:
            assert output == ((("corrupted",), ("corrupted",)),)

    def test_partial_drop_is_seed_deterministic(self):
        plan = FaultPlan(seed=11, drop_rate=0.5)
        first = run_recorder(cycle_graph(12), rounds=3, plan=plan)
        again = run_recorder(cycle_graph(12), rounds=3, plan=plan)
        assert first.outputs == again.outputs
        other = run_recorder(
            cycle_graph(12), rounds=3, plan=FaultPlan(seed=12, drop_rate=0.5)
        )
        assert first.outputs != other.outputs

    def test_no_plan_means_no_faults(self):
        clean = run_recorder(cycle_graph(6), rounds=2)
        assert all(
            None not in inbox for out in clean.outputs for inbox in out
        )


class TestCrashStop:
    def test_explicit_crash_schedule(self):
        result = run_recorder(
            cycle_graph(6), rounds=4, plan=FaultPlan(crashes={0: 1})
        )
        assert result.failures == {0: "crash-stop fault injected at round 1"}
        assert result.outputs[0] is None
        # The other vertices finish; vertex 0's last publish before the
        # crash — ("r", 1), committed after its round-0 step — stays
        # visible to its neighbors forever.
        assert result.outputs[1] is not None
        assert result.outputs[1][-1][0] == ("r", 1)

    def test_crash_at_round_zero_never_steps(self):
        result = run_recorder(
            cycle_graph(6), rounds=2, plan=FaultPlan(crashes={2: 0})
        )
        assert 2 in result.failures
        assert result.outputs[2] is None

    def test_bernoulli_crash_selection_is_seeded(self):
        plan = FaultPlan(seed=5, crash_rate=0.4, crash_round=1)
        first = run_recorder(cycle_graph(20), rounds=2, plan=plan)
        again = run_recorder(cycle_graph(20), rounds=2, plan=plan)
        assert first.failures == again.failures
        assert 0 < len(first.failures) < 20


class TestRoundBudget:
    def test_budget_exhaustion_raises(self):
        with pytest.raises(BudgetExceededError) as info:
            run_recorder(
                cycle_graph(6), rounds=5, plan=FaultPlan(round_budget=2)
            )
        exc = info.value
        assert isinstance(exc, SimulationError)
        assert isinstance(exc, FaultEvent)
        assert exc.kind == "budget"
        assert exc.round == 2
        assert exc.run_meta is not None
        assert exc.run_meta.algorithm == "inbox-recorder"

    def test_sufficient_budget_is_invisible(self):
        clean = run_recorder(cycle_graph(6), rounds=3)
        budgeted = run_recorder(
            cycle_graph(6), rounds=3, plan=FaultPlan(round_budget=3)
        )
        assert budgeted.outputs == clean.outputs
        assert budgeted.rounds == clean.rounds


class TestAmbientInjection:
    def test_inject_faults_scopes_the_plan(self):
        plan = FaultPlan(drop_rate=1.0)
        assert active_fault_plan() is None
        with inject_faults(plan):
            assert active_fault_plan() is plan
            result = run_recorder(cycle_graph(6), rounds=1)
        assert active_fault_plan() is None
        assert result.outputs[0] == (((None, None),))
        clean = run_recorder(cycle_graph(6), rounds=1)
        assert None not in clean.outputs[0][0]

    def test_explicit_plan_overrides_ambient(self):
        with inject_faults(FaultPlan(drop_rate=1.0)):
            result = run_recorder(
                cycle_graph(6), rounds=1, plan=FaultPlan()
            )
        assert result.outputs[0] == ((("r", 0), ("r", 0)),)


MIXED_PLAN = FaultPlan(
    seed=23,
    crashes={1: 2},
    crash_rate=0.1,
    crash_round=1,
    drop_rate=0.3,
    duplicate_rate=0.2,
    corrupt_rate=0.15,
    corrupt=corrupt_hook,
)


class TestEngineEquivalence:
    def test_both_engines_inject_identical_faults(self):
        fast = run_recorder(
            cycle_graph(16), rounds=4, plan=MIXED_PLAN, engine=run_local
        )
        ref = run_recorder(
            cycle_graph(16),
            rounds=4,
            plan=MIXED_PLAN,
            engine=run_local_reference,
        )
        assert fast.outputs == ref.outputs
        assert fast.failures == ref.failures
        assert fast.rounds == ref.rounds
        assert fast.messages == ref.messages

    def test_traces_are_byte_identical_across_engines(self, tmp_path):
        paths = []
        for label, engine in (
            ("fast", run_local),
            ("reference", run_local_reference),
        ):
            path = str(tmp_path / f"{label}.jsonl")
            with JsonlTraceObserver(path, payload_values=True) as obs:
                run_recorder(
                    cycle_graph(16),
                    rounds=4,
                    plan=MIXED_PLAN,
                    engine=engine,
                    observers=[obs],
                )
            paths.append(path)
        fast_bytes = open(paths[0], "rb").read()
        ref_bytes = open(paths[1], "rb").read()
        assert fast_bytes == ref_bytes
        # and the trace actually carries v2 fault events
        kinds = {
            json.loads(line).get("kind")
            for line in fast_bytes.decode().splitlines()
            if json.loads(line)["event"] == "fault"
        }
        assert "crash" in kinds
        assert "drop" in kinds

    def test_fault_free_paths_stay_bit_identical(self):
        fast = run_recorder(cycle_graph(16), rounds=4, engine=run_local)
        ref = run_recorder(
            cycle_graph(16), rounds=4, engine=run_local_reference
        )
        assert fast.outputs == ref.outputs
        assert fast.rounds == ref.rounds


class TestObserverAccounting:
    def test_metrics_count_injected_faults(self):
        obs = MetricsObserver()
        run_recorder(
            cycle_graph(8),
            rounds=3,
            plan=FaultPlan(seed=3, drop_rate=0.5),
            observers=[obs],
        )
        metrics = obs.summary()["metrics"]
        assert metrics["faults_total"]["value"] > 0
        assert (
            metrics["faults_drop_total"]["value"]
            == metrics["faults_total"]["value"]
        )

    def test_no_faults_no_counters(self):
        obs = MetricsObserver()
        run_recorder(cycle_graph(8), rounds=3, observers=[obs])
        assert "faults_total" not in obs.summary()["metrics"]


class TestFailureRateExperiment:
    def test_build_plan_rejects_unknown_kind(self):
        from repro.faults.experiment import build_plan

        with pytest.raises(ValueError, match="unknown fault kind"):
            build_plan("gamma-ray", 0.1, 0, None)

    def test_rates_must_start_with_control(self):
        from repro.faults.experiment import failure_rate_experiment

        with pytest.raises(ValueError, match="control"):
            failure_rate_experiment(rates=(0.01, 0.05), trials=1)

    def test_e6f_at_n_ten_thousand(self):
        """The experiment the `repro faults` subcommand ships: at
        n >= 10^4 the fault-free control matches the paper's 1 - 1/n
        success claim while injected drops defeat the run."""
        from repro.faults.experiment import failure_rate_experiment

        record = failure_rate_experiment(
            n=10_000, delta=9, rates=(0.0, 0.02), trials=2, kind="drop"
        )
        assert record.experiment_id == "E6F"
        assert record.all_checks_pass
        success = {p.x: p.mean for p in record.series[0].points}
        assert success[0.0] == 1.0
        assert success[0.02] < 1.0
        faults = {p.x: p.mean for p in record.series[1].points}
        assert faults[0.0] == 0.0
        assert faults[0.02] > 0.0


class TestDriverUnderFaults:
    def test_crash_fault_surfaces_as_structured_failure(self):
        """A crash-stop adversary drives the Theorem 10 driver into its
        (fault-free-unreachable) phase-1 failure branch, which must
        attach node/round context."""
        from repro.algorithms import pettie_su_tree_coloring
        from repro.graphs.generators import complete_regular_tree_with_size

        tree = complete_regular_tree_with_size(9, 80)
        with inject_faults(FaultPlan(crashes={0: 0})):
            with pytest.raises(AlgorithmFailure) as info:
                pettie_su_tree_coloring(tree, seed=1)
        assert info.value.node is not None
        assert info.value.round is not None
        assert "crash-stop" in str(info.value)

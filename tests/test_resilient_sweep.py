"""Resilient sweep harness tests: retries, timeouts, worker death, and
the checkpoint journal's byte-identical resume contract.

The pooled tests fork real worker processes and exercise the genuine
pathologies the scheduler absorbs — ``os._exit`` mid-cell, hung cells
past their deadline, exceptions that cannot cross the pipe — so they
are kept deliberately small (a handful of cells each).
"""

import json
import os
import pickle
import time

import pytest

from repro.analysis import (
    CellOutcome,
    ExperimentRecord,
    SweepJournal,
    retry_seed,
    run_sweep,
)
from repro.analysis.resilience import (
    CELL_STATUSES,
    JOURNAL_SCHEMA,
    JOURNAL_VERSION,
)
from repro.core.errors import AlgorithmFailure, TelemetryError


def well_behaved(x, seed):
    return x * 100 + seed


class TestRetrySeed:
    def test_attempt_zero_is_the_identity(self):
        for seed in (0, 1, 7, 2**40):
            assert retry_seed(seed, 0) == seed

    def test_attempts_get_independent_seeds(self):
        seeds = {retry_seed(3, attempt) for attempt in range(6)}
        assert len(seeds) == 6

    def test_seeds_are_json_safe_63_bit(self):
        for seed in (0, 5, 2**62):
            for attempt in (1, 2, 9):
                derived = retry_seed(seed, attempt)
                assert 0 <= derived < 2**63

    def test_deterministic(self):
        assert retry_seed(42, 3) == retry_seed(42, 3)


class TestCellOutcome:
    def test_statuses_enumerated(self):
        assert CELL_STATUSES == ("ok", "failed", "timeout", "crashed")

    def test_dict_round_trip(self):
        outcome = CellOutcome(2.0, 1, "failed", None, 3, 17, "boom")
        rebuilt = CellOutcome.from_dict(
            json.loads(json.dumps(outcome.as_dict()))
        )
        assert rebuilt == outcome
        assert not rebuilt.ok

    def test_round_trip_is_pickle_byte_identical(self):
        # The resume contract: a journal-replayed outcome must be
        # indistinguishable from the freshly computed one it replaces,
        # down to pickle bytes (interned status strings).
        fresh = [CellOutcome(1.0, s, "ok", 1.5, 1, s) for s in range(3)]
        replayed = [
            CellOutcome.from_dict(json.loads(json.dumps(o.as_dict())))
            for o in fresh
        ]
        assert pickle.dumps(fresh) == pickle.dumps(replayed)


class TestRunSweepValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            run_sweep("s", [1.0], well_behaved, retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            run_sweep("s", [1.0], well_behaved, timeout=0)


def fails_on_first_attempt(x, seed):
    # retry_seed(seed, 0) == seed, so the first attempt of every cell
    # declares failure; any retried attempt (seed >= 2**32) succeeds.
    if seed < 2**32:
        raise AlgorithmFailure(f"unlucky seed {seed}")
    return x


def always_fails(x, seed):
    raise AlgorithmFailure("doomed")


def fails_for_seed_one(x, seed):
    if seed == 1:
        raise AlgorithmFailure("seed 1 is cursed")
    return x * 10 + seed


class TestSerialRetries:
    def test_retry_reruns_with_derived_seed(self):
        series = run_sweep(
            "retry", [1.0, 2.0], fails_on_first_attempt,
            seeds=(0, 1), retries=1,
        )
        assert series.means == [1.0, 2.0]
        assert series.skipped == []
        for outcome in series.cell_outcomes:
            assert outcome.attempts == 2
            assert outcome.effective_seed == retry_seed(outcome.seed, 1)

    def test_exhausted_retries_raise_without_skip_failures(self):
        with pytest.raises(AlgorithmFailure, match="doomed"):
            run_sweep("r", [1.0], always_fails, seeds=(0,), retries=2)

    def test_skip_failures_records_the_skip(self):
        series = run_sweep(
            "skips", [1.0], fails_for_seed_one,
            seeds=(0, 1, 2), skip_failures=True,
        )
        assert series.points[0].values == [10.0, 12.0]
        assert len(series.skipped) == 1
        skipped = series.skipped[0]
        assert skipped.status == "failed"
        assert skipped.seed == 1
        assert "cursed" in skipped.error

    def test_every_cell_skipped_is_an_error(self):
        with pytest.raises(ValueError, match="every cell at x=1.0"):
            run_sweep(
                "dead", [1.0], always_fails,
                seeds=(0, 1), skip_failures=True,
            )

    def test_skipped_cells_render_as_warnings(self):
        series = run_sweep(
            "skips", [1.0], fails_for_seed_one,
            seeds=(0, 1, 2), skip_failures=True,
        )
        record = ExperimentRecord("T0", "skip rendering")
        record.add_series(series)
        rendered = record.render()
        assert "warning: 1 cell(s) excluded" in rendered
        assert "[failed]" in rendered


def crash_on_seed_two(x, seed):
    if seed == 2:
        os._exit(42)  # simulate an OOM-kill / hard interpreter abort
    return x + seed


def hang_on_seed_zero(x, seed):
    if seed == 0:
        time.sleep(60)
    return x + seed


def raise_keyboard_interrupt(x, seed):
    raise KeyboardInterrupt


class Unpicklable(Exception):
    def __init__(self):
        super().__init__("cannot cross the pipe")
        self.payload = lambda: None


def raise_unpicklable(x, seed):
    raise Unpicklable()


def raise_zero_division(x, seed):
    return x / 0


class TestPooledPathologies:
    def test_pooled_matches_serial(self):
        serial = run_sweep("p", [1.0, 2.0, 3.0], well_behaved, seeds=(0, 1))
        pooled = run_sweep(
            "p", [1.0, 2.0, 3.0], well_behaved, seeds=(0, 1), workers=3
        )
        assert pickle.dumps(serial) == pickle.dumps(pooled)

    def test_dead_worker_fails_its_cell_not_the_sweep(self):
        series = run_sweep(
            "crashpool", [1.0], crash_on_seed_two,
            seeds=(0, 1, 2), workers=2,
        )
        assert series.points[0].values == [1.0, 2.0]
        assert [o.status for o in series.skipped] == ["crashed"]
        assert "died without reporting" in series.skipped[0].error

    def test_hung_worker_is_killed_at_the_deadline(self):
        start = time.monotonic()
        series = run_sweep(
            "hangpool", [5.0], hang_on_seed_zero,
            seeds=(0, 1), workers=2, timeout=1.0,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30  # nowhere near the 60s sleep
        assert series.points[0].values == [6.0]
        assert [o.status for o in series.skipped] == ["timeout"]
        assert "deadline" in series.skipped[0].error

    def test_worker_base_exception_aborts_the_sweep(self):
        with pytest.raises(RuntimeError, match="process boundary"):
            run_sweep(
                "kbd", [1.0], raise_keyboard_interrupt,
                seeds=(0, 1), workers=2,
            )

    def test_unpicklable_worker_exception_still_reports(self):
        with pytest.raises(RuntimeError, match="process boundary"):
            run_sweep(
                "unpicklable", [1.0], raise_unpicklable,
                seeds=(0, 1), workers=2,
            )

    def test_picklable_bugs_propagate_as_themselves(self):
        with pytest.raises(ZeroDivisionError):
            run_sweep(
                "bug", [1.0], raise_zero_division,
                seeds=(0, 1), workers=2,
            )

    def test_pooled_retries_match_serial(self):
        serial = run_sweep(
            "retrypool", [1.0, 2.0], fails_on_first_attempt,
            seeds=(0, 1), retries=1,
        )
        pooled = run_sweep(
            "retrypool", [1.0, 2.0], fails_on_first_attempt,
            seeds=(0, 1), retries=1, workers=2,
        )
        assert pickle.dumps(serial) == pickle.dumps(pooled)


def abort_late(x, seed):
    # Deterministically dies on the last grid cell: everything before
    # it lands in the journal, simulating an interrupted sweep.
    if (x, seed) == (3.0, 1):
        raise RuntimeError("simulated power loss")
    return x * 100 + seed


class TestJournal:
    XS = [1.0, 2.0, 3.0]
    SEEDS = (0, 1)

    def test_header_is_canonical(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with SweepJournal(path, {"b": 2, "a": 1}) as journal:
            journal.record(0, CellOutcome(1.0, 0, "ok", 1.0, 1, 0), None)
        header = json.loads(open(path).read().splitlines()[0])
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["version"] == JOURNAL_VERSION
        assert header["fingerprint"] == {"a": 1, "b": 2}

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        with pytest.raises(RuntimeError, match="power loss"):
            run_sweep(
                "resume", self.XS, abort_late,
                seeds=self.SEEDS, journal=journal,
            )
        completed_lines = len(open(journal).read().splitlines())
        assert completed_lines == 1 + 5  # header + all cells before the abort
        resumed = run_sweep(
            "resume", self.XS, well_behaved,
            seeds=self.SEEDS, journal=journal,
        )
        uninterrupted = run_sweep(
            "resume", self.XS, well_behaved, seeds=self.SEEDS
        )
        assert pickle.dumps(resumed) == pickle.dumps(uninterrupted)

    def test_pooled_run_resumes_serially(self, tmp_path):
        journal = str(tmp_path / "pooled.jsonl")
        with pytest.raises(RuntimeError, match="power loss"):
            run_sweep(
                "resume", self.XS, abort_late,
                seeds=self.SEEDS, journal=journal, workers=2,
            )
        resumed = run_sweep(
            "resume", self.XS, well_behaved,
            seeds=self.SEEDS, journal=journal,
        )
        uninterrupted = run_sweep(
            "resume", self.XS, well_behaved, seeds=self.SEEDS
        )
        assert pickle.dumps(resumed) == pickle.dumps(uninterrupted)

    def test_complete_journal_replays_without_measuring(self, tmp_path):
        journal = str(tmp_path / "done.jsonl")
        first = run_sweep(
            "full", self.XS, well_behaved,
            seeds=self.SEEDS, journal=journal,
        )
        replayed = run_sweep(
            "full", self.XS, raise_zero_division,  # must never be called
            seeds=self.SEEDS, journal=journal,
        )
        assert pickle.dumps(first) == pickle.dumps(replayed)

    def test_foreign_fingerprint_is_refused(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        run_sweep(
            "fp", self.XS, well_behaved, seeds=self.SEEDS, journal=journal
        )
        with pytest.raises(ValueError, match="different sweep configuration"):
            run_sweep(
                "fp", [9.0], well_behaved, seeds=self.SEEDS, journal=journal
            )

    def test_torn_trailing_line_reruns_that_cell(self, tmp_path):
        journal = str(tmp_path / "torn.jsonl")
        run_sweep(
            "torn", self.XS, well_behaved, seeds=self.SEEDS, journal=journal
        )
        lines = open(journal).read().splitlines()
        with open(journal, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
            handle.write(lines[-1][: len(lines[-1]) // 2])  # torn write
        resumed = run_sweep(
            "torn", self.XS, well_behaved, seeds=self.SEEDS, journal=journal
        )
        uninterrupted = run_sweep(
            "torn", self.XS, well_behaved, seeds=self.SEEDS
        )
        assert pickle.dumps(resumed) == pickle.dumps(uninterrupted)

    def test_foreign_schema_is_refused(self, tmp_path):
        path = str(tmp_path / "alien.jsonl")
        with open(path, "w") as handle:
            handle.write('{"schema": "other.format", "version": 1}\n')
        with pytest.raises(ValueError, match="is not a"):
            SweepJournal(path, {"name": "x"})

    def test_unreadable_header_is_refused(self, tmp_path):
        path = str(tmp_path / "garbage.jsonl")
        with open(path, "w") as handle:
            handle.write("not json at all\n")
        with pytest.raises(ValueError, match="unreadable header"):
            SweepJournal(path, {"name": "x"})

    def test_non_json_safe_summary_is_refused(self, tmp_path):
        path = str(tmp_path / "sets.jsonl")
        with SweepJournal(path, {"name": "x"}) as journal:
            outcome = CellOutcome(1.0, 0, "ok", 1.0, 1, 0)
            with pytest.raises(TelemetryError, match="cannot be journaled"):
                journal.record(0, outcome, {"bad": {1, 2}})

    def test_lossy_json_round_trip_is_refused(self, tmp_path):
        path = str(tmp_path / "intkeys.jsonl")
        with SweepJournal(path, {"name": "x"}) as journal:
            outcome = CellOutcome(1.0, 0, "ok", 1.0, 1, 0)
            with pytest.raises(TelemetryError, match="round-trip"):
                # int keys become strings in JSON: silently different
                # on resume, so the journal must refuse them.
                journal.record(0, outcome, {1: "x"})


def hang_on_first_attempt(x, seed):
    # retry_seed(seed, 0) == seed, so attempt 0 of every cell hangs
    # past the deadline; the retried attempt (seed >= 2**32) succeeds.
    if seed < 2**32:
        time.sleep(60)
    return x * 10


def run_under_checkpoint(x, seed):
    # A real engine run, so the in-run checkpoint scope has something
    # to snapshot.
    import random

    from repro.algorithms import luby_mis
    from repro.graphs.generators import random_regular_graph

    g = random_regular_graph(40, 3, random.Random(seed))
    return float(luby_mis(g, seed=seed).rounds) + x


class TestTimeoutRetry:
    """A cell that times out on attempt 0 and succeeds on attempt 1:
    the settled outcome records both attempts, and the journal resumes
    byte-identically."""

    def test_timeout_then_success_records_both_attempts(self, tmp_path):
        journal = str(tmp_path / "flaky.jsonl")
        start = time.monotonic()
        series = run_sweep(
            "flaky", [1.0, 2.0], hang_on_first_attempt,
            seeds=(0,), workers=2, retries=1, timeout=1.0,
            journal=journal,
        )
        assert time.monotonic() - start < 30
        assert series.skipped == []
        for outcome in series.cell_outcomes:
            assert outcome.status == "ok"
            assert outcome.attempts == 2
            assert outcome.effective_seed == retry_seed(outcome.seed, 1)
        assert [p.values for p in series.points] == [[10.0], [20.0]]
        # Re-running with the same journal replays the settled cells —
        # the measure must never be called again — byte-identically.
        replayed = run_sweep(
            "flaky", [1.0, 2.0], raise_zero_division,
            seeds=(0,), workers=2, retries=1, timeout=1.0,
            journal=journal,
        )
        assert pickle.dumps(series) == pickle.dumps(replayed)


class TestSweepCheckpointComposition:
    """checkpoint_dir adds in-run recovery beneath the journal's
    cell-level recovery without changing any aggregate."""

    def test_checkpointed_sweep_matches_plain(self, tmp_path):
        plain = run_sweep(
            "ck", [1.0, 2.0], run_under_checkpoint, seeds=(0, 1)
        )
        checked = run_sweep(
            "ck", [1.0, 2.0], run_under_checkpoint, seeds=(0, 1),
            checkpoint_dir=str(tmp_path / "cells"),
        )
        assert pickle.dumps(plain) == pickle.dumps(checked)
        assert (tmp_path / "cells" / "cell-0000").is_dir()
        assert any(
            name.endswith(".done")
            for name in os.listdir(tmp_path / "cells" / "cell-0000")
        )

    def test_pooled_checkpointed_sweep_matches_plain(self, tmp_path):
        plain = run_sweep(
            "ckp", [1.0, 2.0], run_under_checkpoint, seeds=(0, 1)
        )
        checked = run_sweep(
            "ckp", [1.0, 2.0], run_under_checkpoint, seeds=(0, 1),
            workers=2, checkpoint_dir=str(tmp_path / "cells"),
        )
        assert pickle.dumps(plain) == pickle.dumps(checked)

    def test_checkpoint_config_is_part_of_the_fingerprint(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        run_sweep(
            "fpck", [1.0], well_behaved, seeds=(0,), journal=journal,
            checkpoint_dir=str(tmp_path / "cells"),
        )
        with pytest.raises(
            ValueError, match="different sweep configuration"
        ):
            run_sweep(
                "fpck", [1.0], well_behaved, seeds=(0,), journal=journal
            )

"""Shattering profiler: halt-fraction curve, surviving components, and
the Theorem 3 acceptance run.

The tier-1 acceptance test traces the Theorem 10 randomized Δ-coloring
driver on a random bounded-degree tree with n = 10^4 and asserts the
paper's predicted shape: Phase 1 resolves >= 90% of vertices and the
surviving components stay under the Δ⁴ ln n bound.
"""

import random

import pytest

from repro.algorithms import pettie_su_tree_coloring
from repro.algorithms.rand_tree_coloring import BAD
from repro.cli import main
from repro.core import observe_runs
from repro.graphs.generators import random_tree_bounded_degree
from repro.obs import (
    JsonlTraceObserver,
    profile_events,
    profile_trace,
    render_profile_report,
)


def _synthetic_events():
    """A hand-built trace: path 0-1-2-3, halts spread over rounds.

    Round 0: vertex 0 halts (resolved). Round 1: vertex 1 halts with
    the sentinel -1 (survivor), vertex 3 halts resolved.  Vertex 2
    never halts.
    """
    return [
        {
            "event": "run_start",
            "run": 0,
            "algorithm": "synthetic",
            "model": "RAND",
            "n": 4,
            "m": 3,
            "max_degree": 2,
            "max_rounds": 100,
            "seed": 0,
            "edges": [[0, 1], [1, 2], [2, 3]],
        },
        {"event": "round_start", "run": 0, "round": 0, "active": 4},
        {"event": "halt", "run": 0, "round": 0, "v": 0, "value": 5},
        {
            "event": "round_end",
            "run": 0,
            "round": 0,
            "awake": 4,
            "halted": 1,
            "messages": 6,
        },
        {"event": "round_start", "run": 0, "round": 1, "active": 3},
        {"event": "halt", "run": 0, "round": 1, "v": 1, "value": -1},
        {"event": "halt", "run": 0, "round": 1, "v": 3, "value": 7},
        {
            "event": "round_end",
            "run": 0,
            "round": 1,
            "awake": 3,
            "halted": 2,
            "messages": 6,
        },
        {"event": "run_end", "run": 0, "rounds": 2, "messages": 12},
    ]


class TestProfileEvents:
    def test_curve_without_sentinel(self):
        profile = profile_events(_synthetic_events(), threshold=0.7)
        assert [s.resolved for s in profile.curve] == [1, 3]
        assert profile.curve[0].halt_fraction == 0.25
        assert profile.curve[0].survivors == 3
        # Survivors 1-2-3 form one path component of size 3.
        assert profile.curve[0].num_components == 1
        assert profile.curve[0].max_component == 3
        # After round 1 only vertex 2 survives.
        assert profile.curve[1].max_component == 1
        assert profile.final_fraction == 0.75
        assert profile.shattering_round == 1
        assert profile.rounds == 2

    def test_sentinel_counts_as_survivor(self):
        profile = profile_events(
            _synthetic_events(), threshold=0.7, unresolved=-1
        )
        # Vertex 1 halted with -1: still a survivor.
        assert [s.resolved for s in profile.curve] == [1, 2]
        assert profile.final_fraction == 0.5
        assert profile.shattering_round is None
        # Survivors 1 and 2 stay one connected component of size 2.
        assert profile.curve[1].num_components == 1
        assert profile.curve[1].max_component == 2
        assert not profile.ok()

    def test_paper_bound_formula(self):
        import math

        profile = profile_events(_synthetic_events())
        assert profile.paper_bound == pytest.approx(
            2 ** 4 * math.log(4)
        )

    def test_missing_run_raises(self):
        with pytest.raises(ValueError, match="no run_start"):
            profile_events(_synthetic_events(), run=3)

    def test_missing_topology_raises(self):
        events = _synthetic_events()
        del events[0]["edges"]
        with pytest.raises(ValueError, match="without topology"):
            profile_events(events)

    def test_report_mentions_verdicts(self):
        report = render_profile_report(
            profile_events(_synthetic_events(), threshold=0.7)
        )
        assert "[ok] halt_fraction" in report
        assert "component bound" in report
        assert "Theorem 3" in report


class TestAcceptanceRun:
    """Theorem 3 measured on the real driver at n = 10^4 (tier 1)."""

    def test_phase1_shatters_at_ten_thousand(self, tmp_path):
        n, delta, seed = 10_000, 9, 1
        tree = random_tree_bounded_degree(
            n, delta, random.Random(seed)
        )
        path = str(tmp_path / "phase1.jsonl")
        obs = JsonlTraceObserver(path)
        try:
            with observe_runs(obs):
                report = pettie_su_tree_coloring(tree, seed=seed)
        finally:
            obs.close()
        assert len(report.labeling) == n

        # Run 0 of the driver is Phase 1 (color bidding).
        profile = profile_trace(path, run=0, unresolved=BAD)
        assert profile.n == n
        assert profile.final_fraction >= 0.9
        assert profile.shattering_round is not None
        assert profile.max_surviving_component <= profile.paper_bound
        assert profile.ok()

        # Surviving components stay poly(log n): the paper bound is
        # Δ⁴ ln n ≈ 6.0e4, the observed components are far smaller.
        assert profile.max_surviving_component < n // 10


class TestProfileCli:
    def test_trace_then_profile_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        assert (
            main(
                [
                    "trace",
                    "--workload",
                    "coloring",
                    "--n",
                    "300",
                    "--seed",
                    "1",
                    "--output",
                    path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trace written" in out
        assert (
            main(["profile", "--trace", path, "--unresolved", "-1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "shattering profile" in out
        assert "[ok] halt_fraction" in out

    def test_trace_rejects_bad_size(self, capsys):
        assert (
            main(["trace", "--n", "1", "--output", "/tmp/nope.jsonl"])
            == 2
        )
        assert "need n >= 2" in capsys.readouterr().err

    def test_profile_missing_trace_is_usage_error(self, capsys):
        assert main(["profile", "--trace", "/no/such/file.jsonl"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_profile_driver_rejects_small_delta(self, capsys):
        assert main(["profile", "--n", "100", "--delta", "5"]) == 2
        assert "delta >= 9" in capsys.readouterr().err

    def test_profile_missing_run_is_usage_error(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        assert (
            main(
                [
                    "trace",
                    "--workload",
                    "mis",
                    "--n",
                    "60",
                    "--delta",
                    "3",
                    "--output",
                    path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["profile", "--trace", path, "--run", "9"]) == 2
        assert "no run_start event for run 9" in capsys.readouterr().err

    def test_failing_profile_exits_one(self, tmp_path, capsys):
        import json

        # Hand-built trace where only 1 of 4 vertices resolves.
        events = _synthetic_events()
        path = tmp_path / "weak.jsonl"
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in events)
        )
        assert (
            main(
                [
                    "profile",
                    "--trace",
                    str(path),
                    "--unresolved",
                    "-1",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "[FAIL] halt_fraction" in out

    def test_profile_golden_report(self, tmp_path, capsys):
        """The report for a fixed seed is pinned byte-for-byte; a
        diff means either the driver or the profiler changed."""
        report_path = str(tmp_path / "report.txt")
        assert (
            main(
                [
                    "profile",
                    "--n",
                    "300",
                    "--seed",
                    "1",
                    "--output",
                    report_path,
                ]
            )
            == 0
        )
        capsys.readouterr()
        with open(report_path, encoding="utf-8") as fh:
            got = fh.read()
        with open(
            "tests/fixtures/profile_golden.txt", encoding="utf-8"
        ) as fh:
            want = fh.read()
        assert got == want

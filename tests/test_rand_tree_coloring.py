"""Tests for the paper's Theorem 10 algorithm (ColorBidding +
Filtering + shattering)."""

import pytest

from repro.algorithms.rand_tree_coloring import (
    BAD,
    ColorBiddingAlgorithm,
    ColorBiddingConfig,
    ShatteringStats,
    pettie_su_tree_coloring,
    reserved_colors,
)
from repro.core import Model, run_local
from repro.graphs.generators import (
    complete_tree_with_max_degree,
    random_tree_bounded_degree,
)
from repro.lcl import KColoring, ProperColoring


class TestConfig:
    def test_escalation_schedule_shape(self):
        config = ColorBiddingConfig()
        schedule = config.escalation_schedule(1000)
        assert schedule[0] == 1.0
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))
        assert schedule[-1] == pytest.approx(1000 ** 0.1)

    def test_schedule_length_loglike(self):
        config = ColorBiddingConfig()
        short = len(config.escalation_schedule(16))
        long = len(config.escalation_schedule(10 ** 9))
        assert long <= short + 40  # log*-ish, certainly not polynomial

    def test_paper_constants_would_stall(self):
        """With the paper's literal constants the escalation is so slow
        the schedule would be astronomically long — documenting why we
        default to practical equivalents."""
        import math

        paper = ColorBiddingConfig(
            palette_guard=200.0,
            growth_denominator=3 * 200 * math.exp(200),
        )
        # One step barely moves: c_2 = exp(1/g) ~ 1 + 1e-89.
        c2 = 1.0 * math.exp(1.0 / paper.growth_denominator)
        assert c2 - 1.0 < 1e-80

    def test_reserved_colors(self):
        assert reserved_colors(9) == 3
        assert reserved_colors(16) == 4
        assert reserved_colors(17) == 5
        assert reserved_colors(55) == 8


class TestPhase1:
    def test_partial_coloring_proper(self, rng):
        g = random_tree_bounded_degree(400, 12, rng)
        r = reserved_colors(12)
        result = run_local(
            g,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=3,
            global_params={
                "config": ColorBiddingConfig(),
                "main_palette": 12 - r,
            },
        )
        outputs = result.outputs
        # Colored vertices must be properly colored within the main
        # palette; BAD vertices are unconstrained.
        for v in g.vertices():
            if outputs[v] == BAD:
                continue
            assert 0 <= outputs[v] < 12 - r
            for u in g.neighbors(v):
                assert outputs[u] == BAD or outputs[u] != outputs[v]

    def test_most_vertices_colored(self, rng):
        g = random_tree_bounded_degree(1000, 16, rng)
        result = run_local(
            g,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=5,
            global_params={
                "config": ColorBiddingConfig(),
                "main_palette": 16 - reserved_colors(16),
            },
        )
        bad = sum(1 for out in result.outputs if out == BAD)
        assert bad < 0.2 * 1000


class TestFullAlgorithm:
    @pytest.mark.parametrize("delta", [9, 12, 16, 25])
    def test_valid_delta_coloring(self, delta, rng):
        g = random_tree_bounded_degree(600, delta, rng)
        report = pettie_su_tree_coloring(g, seed=7)
        assert KColoring(g.max_degree).is_solution(g, report.labeling)

    def test_complete_tree(self):
        g = complete_tree_with_max_degree(10, 1000)
        report = pettie_su_tree_coloring(g, seed=2)
        assert KColoring(10).is_solution(g, report.labeling)

    def test_small_delta_rejected(self, rng):
        g = random_tree_bounded_degree(50, 4, rng)
        with pytest.raises(ValueError):
            pettie_su_tree_coloring(g, seed=1)

    def test_stats_attached(self, rng):
        g = random_tree_bounded_degree(800, 16, rng)
        report = pettie_su_tree_coloring(g, seed=9)
        stats = report.log.stats
        assert isinstance(stats, ShatteringStats)
        assert stats.bad_vertices >= 0
        if stats.bad_vertices:
            assert stats.max_component >= 1
            assert sum(stats.component_sizes) == stats.bad_vertices

    def test_components_within_paper_bound(self, rng):
        g = random_tree_bounded_degree(2000, 16, rng)
        report = pettie_su_tree_coloring(g, seed=11)
        stats = report.log.stats
        bound = ShatteringStats.paper_bound(2000, 16)
        assert stats.max_component <= bound

    def test_rounds_nearly_size_free(self, rng):
        small = random_tree_bounded_degree(500, 16, rng)
        large = random_tree_bounded_degree(8000, 16, rng)
        r_small = pettie_su_tree_coloring(small, seed=3).rounds
        r_large = pettie_su_tree_coloring(large, seed=3).rounds
        # log log n growth: 16x size increase buys only a few rounds.
        assert r_large <= r_small + 25

    def test_seed_reproducibility(self, rng):
        g = random_tree_bounded_degree(500, 16, rng)
        a = pettie_su_tree_coloring(g, seed=13)
        b = pettie_su_tree_coloring(g, seed=13)
        assert a.labeling == b.labeling
        assert a.rounds == b.rounds

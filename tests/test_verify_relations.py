"""Each metamorphic relation must reject its seeded broken fixture.

Every fixture here is a deliberately buggy node program violating one
LOCAL-model axiom — an ID-leaking colorer, a port-compass program, a
scan-order leak, a wake-bucket order leak, a fault-handler drawing from
a shared RNG, a value-dependent "order-invariant" program.  The tests
pin that the matching relation (a) flags it, (b) shrinks the
counterexample to at most 12 vertices, and (c) accepts a correct
control subject, so the catalogue neither under- nor over-rejects.
"""

import multiprocessing
import random

import pytest

from repro.algorithms.drivers import get_driver
from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.graphs.generators import cycle_graph, path_graph
from repro.lcl import KColoring
from repro.verify import (
    CheckpointResume,
    EngineEquivalence,
    FaultPlanDeterminism,
    IdRelabeling,
    ObserverNeutrality,
    OrderInvariance,
    PartitionInvariance,
    PortPermutation,
    VertexOrderInvariance,
    find_counterexample,
    make_instance,
    standard_relations,
    subject_from_algorithm,
    subject_from_spec,
)

# Families the fixtures run on.  ``requested n`` maps to the realized
# size the family's constraints allow.


def _cycle_by_three(n, rng):
    return cycle_graph(max(3, 3 * (n // 3)))


def _cycle(n, rng):
    return cycle_graph(max(3, n))


def _path(n, rng):
    return path_graph(max(4, n))


# ----------------------------------------------------------------------
# Broken fixtures: one per relation
# ----------------------------------------------------------------------
class IdLeakColoring(SyncAlgorithm):
    """Colors by ``ID mod 3`` — a proper coloring of C_{3k} exactly
    when the ID assignment happens to follow the cycle."""

    name = "id-leak-coloring"

    def setup(self, ctx):
        ctx.halt(ctx.id % 3)


class PortCompassColoring(SyncAlgorithm):
    """2-colors a path by a wave from the head, assuming port 0 points
    toward the head — a property of edge-insertion order, not of the
    LOCAL model."""

    name = "port-compass-coloring"

    def setup(self, ctx):
        rev = ctx.input["reverse_ports"]
        if ctx.degree == 1 and rev[0] == 0:
            ctx.publish(0)
            ctx.halt(0)

    def step(self, ctx, inbox):
        left = inbox[0]
        if left is not None:
            color = 1 - left
            ctx.publish(color)
            ctx.halt(color)


class ScanRankColoring(SyncAlgorithm):
    """Labels each vertex with a shared counter's next value — a hidden
    cross-node channel leaking the engine's scan order."""

    name = "scan-rank-coloring"

    def __init__(self):
        self._next = 0

    def setup(self, ctx):
        self._next += 1
        ctx.halt(self._next)


class WakeOrderColoring(SyncAlgorithm):
    """Ranks vertices through a shared counter after a sleep stagger
    that merges two wake buckets: even-ID vertices sleep to round 2
    from setup, odd-ID vertices pass through round 0 and re-sleep to
    round 2, so the fast engine's runnable list wakes evens before odds
    while the reference engine steps vertices in ascending order."""

    name = "wake-order-coloring"

    def __init__(self):
        self._next = 0

    def setup(self, ctx):
        ctx.state["deferred"] = False
        if ctx.id % 2 == 0:
            ctx.sleep_until(2)

    def step(self, ctx, inbox):
        if ctx.id % 2 == 1 and not ctx.state["deferred"]:
            ctx.state["deferred"] = True
            ctx.sleep_until(2)
            return
        self._next += 1
        ctx.halt(self._next)


_PANIC_RNG = random.Random()


class FaultPanicColoring(SyncAlgorithm):
    """Deterministic on clean runs, but answers a perturbed inbox with
    a draw from a *shared module-level* RNG — the perturbed execution
    is then not a function of the FaultPlan."""

    name = "fault-panic-coloring"

    def setup(self, ctx):
        ctx.publish("hello")

    def step(self, ctx, inbox):
        if any(m != "hello" for m in inbox):
            ctx.halt(_PANIC_RNG.getrandbits(16))
        else:
            ctx.halt(0)


class AmnesiacColoring(SyncAlgorithm):
    """Tracks progress in a class-level (process-global) counter
    instead of ``ctx.state``.  A checkpoint cannot see it, so a
    killed-and-resumed run finds the counter already advanced past the
    snapshot's round and halts early with different outputs — exactly
    the hidden-state bug the checkpoint-resume relation exists to
    catch."""

    name = "amnesiac-coloring"
    #: Process-global step clock — the bug.
    clock = 0

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        AmnesiacColoring.clock += 1
        if AmnesiacColoring.clock >= 3 * ctx.n:
            ctx.halt(AmnesiacColoring.clock % 5)


class ShardRankColoring(SyncAlgorithm):
    """Ranks vertices through a shared in-process counter consumed at
    *step* time — a hidden cross-node channel that cannot survive a
    process boundary.  The serial engines rank all n vertices through
    one counter; forked shard workers each inherit their own copy, so
    vertices in different shards draw colliding ranks."""

    name = "shard-rank-coloring"

    def __init__(self):
        self._next = 0

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        self._next += 1
        ctx.halt(self._next)


class ParityColoring(SyncAlgorithm):
    """Declared order-invariant, but outputs ``ID mod 2`` — the parity
    of an ID is not determined by its rank."""

    name = "parity-coloring"

    def setup(self, ctx):
        ctx.halt(ctx.id % 2)


class LocalMaxFlag(SyncAlgorithm):
    """Correct control: flags local ID maxima.  Genuinely
    order-invariant, index-independent, and fault-tolerant (a missing
    or corrupted inbox value is treated as -inf)."""

    name = "local-max-flag"

    def setup(self, ctx):
        ctx.publish(ctx.id)

    def step(self, ctx, inbox):
        values = [x if isinstance(x, int) else -1 for x in inbox]
        ctx.halt(1 if all(ctx.id > x for x in values) else 0)


def _control_subject():
    return subject_from_algorithm(
        LocalMaxFlag,
        name="local-max-flag",
        model=Model.DET,
        order_invariant=True,
        max_rounds=50,
    )


# (relation, broken subject, family, min_n) — the catalogue's negative
# fixtures.  Seed 0 is pinned: `find_counterexample` is a pure function
# of it.
BROKEN = {
    "id-relabeling": (
        IdRelabeling(),
        lambda: subject_from_algorithm(
            IdLeakColoring,
            name="id-leak-coloring",
            model=Model.DET,
            problem=lambda g: KColoring(3),
        ),
        _cycle_by_three,
        3,
    ),
    "port-permutation": (
        PortPermutation(),
        lambda: subject_from_algorithm(
            PortCompassColoring,
            name="port-compass-coloring",
            model=Model.DET,
            problem=lambda g: KColoring(2),
            max_rounds=200,
        ),
        _path,
        4,
    ),
    "vertex-order": (
        VertexOrderInvariance(),
        lambda: subject_from_algorithm(
            ScanRankColoring,
            name="scan-rank-coloring",
            model=Model.DET,
        ),
        _cycle,
        3,
    ),
    "engine-equivalence": (
        EngineEquivalence(),
        lambda: subject_from_algorithm(
            WakeOrderColoring,
            name="wake-order-coloring",
            model=Model.DET,
            max_rounds=50,
        ),
        _cycle,
        3,
    ),
    "observer-neutrality": (
        ObserverNeutrality(),
        lambda: subject_from_algorithm(
            WakeOrderColoring,
            name="wake-order-coloring",
            model=Model.DET,
            max_rounds=50,
        ),
        _cycle,
        3,
    ),
    "fault-determinism": (
        FaultPlanDeterminism(),
        lambda: subject_from_algorithm(
            FaultPanicColoring,
            name="fault-panic-coloring",
            model=Model.DET,
            max_rounds=50,
        ),
        _cycle,
        3,
    ),
    "checkpoint-resume": (
        CheckpointResume(),
        lambda: subject_from_algorithm(
            AmnesiacColoring,
            name="amnesiac-coloring",
            model=Model.DET,
            max_rounds=50,
        ),
        _cycle,
        3,
    ),
    "partition-invariance": (
        PartitionInvariance(),
        lambda: subject_from_algorithm(
            ShardRankColoring,
            name="shard-rank-coloring",
            model=Model.DET,
            max_rounds=50,
        ),
        _cycle,
        3,
    ),
    "order-invariance": (
        OrderInvariance(),
        lambda: subject_from_algorithm(
            ParityColoring,
            name="parity-coloring",
            model=Model.DET,
            order_invariant=True,
        ),
        _cycle,
        3,
    ),
}


def test_catalogue_is_complete():
    # Every shipped relation has a broken fixture here, by name.
    assert {r.name for r in standard_relations()} == set(BROKEN)


def _skip_unless_forkable(relation_name):
    if relation_name == "partition-invariance" and (
        "fork" not in multiprocessing.get_all_start_methods()
    ):
        pytest.skip("sharded backend needs the fork start method")


@pytest.mark.parametrize("relation_name", sorted(BROKEN))
def test_relation_rejects_broken_fixture(relation_name):
    relation, make_subject, family, min_n = BROKEN[relation_name]
    _skip_unless_forkable(relation_name)
    subject = make_subject()
    assert relation.applies_to(subject)
    found = find_counterexample(
        subject, relation, family, min_n, sizes=[12], seeds=[0]
    )
    assert found is not None, (
        f"{relation_name} failed to reject its broken fixture"
    )
    violation, original_n = found
    assert violation.relation == relation_name
    assert violation.subject == subject.name
    # The acceptance bar: counterexamples minimize to tiny instances.
    assert violation.instance["n"] <= 12
    assert violation.instance["n"] <= original_n
    assert violation.message


@pytest.mark.parametrize("relation_name", sorted(BROKEN))
def test_relation_accepts_correct_control(relation_name):
    relation = BROKEN[relation_name][0]
    _skip_unless_forkable(relation_name)
    subject = _control_subject()
    if relation.name in ("id-relabeling", "port-permutation"):
        # Validity relations need an LCL; audit a shipped driver.
        spec = get_driver("deterministic-matching")
        subject = subject_from_spec(spec)
        family, min_n = spec.make_graph, spec.min_n
    else:
        family, min_n = _cycle, 3
    assert relation.applies_to(subject)
    found = find_counterexample(
        subject, relation, family, min_n, sizes=[12], seeds=[0, 1]
    )
    assert found is None, f"{relation_name} rejected a correct subject"


def test_broken_fixture_counterexamples_are_reproducible():
    # Same seed, same relation => byte-identical violation record.
    relation, make_subject, family, min_n = BROKEN["id-relabeling"]
    runs = [
        find_counterexample(
            make_subject(), relation, family, min_n,
            sizes=[12], seeds=[0],
        )
        for _ in range(2)
    ]
    assert runs[0] is not None
    assert runs[0] == runs[1]


def test_wake_order_fixture_is_engine_divergence_not_noise():
    # The wake-bucket fixture diverges *between* engines but each
    # engine alone is deterministic — repeating the fast run agrees.
    _, make_subject, family, _ = BROKEN["engine-equivalence"]
    subject = make_subject()
    instance = make_instance(family, 12, 0)
    from repro.verify import run_outcome

    assert run_outcome(subject, instance) == run_outcome(
        subject, instance
    )


def test_scan_rank_fixture_survives_identity_permutation():
    # Sanity: the vertex-order fixture's bug is *only* visible under a
    # nontrivial permutation; on the untransformed instance both runs
    # trivially agree, so the relation (not flaky execution) is what
    # rejects it.
    _, make_subject, family, _ = BROKEN["vertex-order"]
    subject = make_subject()
    instance = make_instance(family, 8, 3)
    from repro.verify import run_outcome

    first = run_outcome(subject, instance)
    assert first[0] == "ok"
    assert run_outcome(subject, instance) == first

"""Tests for the color-reduction subroutines."""

import pytest

from repro.algorithms.linial import LinialColoring
from repro.algorithms.reduction import (
    ClassByClassReduction,
    KuhnWattenhoferReduction,
    _kw_stage_plan,
)
from repro.core import Model, run_local
from repro.graphs.generators import (
    cycle_graph,
    random_regular_graph,
    random_tree_bounded_degree,
    star_graph,
)
from repro.lcl import KColoring, ProperColoring


def _initial_coloring(graph):
    result = run_local(graph, LinialColoring(), Model.DET)
    colors = result.outputs
    return colors, max(colors) + 1


@pytest.mark.parametrize(
    "algorithm_cls", [ClassByClassReduction, KuhnWattenhoferReduction]
)
class TestReductions:
    def test_reduces_to_delta_plus_one(self, algorithm_cls, rng):
        g = random_regular_graph(150, 5, rng)
        colors, palette = _initial_coloring(g)
        target = g.max_degree + 1
        result = run_local(
            g,
            algorithm_cls(),
            Model.DET,
            node_inputs=[{"color": c} for c in colors],
            global_params={"palette": palette, "target": target},
        )
        assert KColoring(target).is_solution(g, result.outputs)

    def test_on_tree(self, algorithm_cls, rng):
        g = random_tree_bounded_degree(200, 6, rng)
        colors, palette = _initial_coloring(g)
        target = g.max_degree + 1
        result = run_local(
            g,
            algorithm_cls(),
            Model.DET,
            node_inputs=[{"color": c} for c in colors],
            global_params={"palette": palette, "target": target},
        )
        assert KColoring(target).is_solution(g, result.outputs)

    def test_noop_when_already_small(self, algorithm_cls):
        g = cycle_graph(6)
        colors = [0, 1, 0, 1, 0, 1]
        result = run_local(
            g,
            algorithm_cls(),
            Model.DET,
            node_inputs=[{"color": c} for c in colors],
            global_params={"palette": 2, "target": 3},
        )
        assert result.outputs == colors
        assert result.rounds == 0

    def test_active_ports_restriction(self, algorithm_cls):
        # Star with center colored 5, leaves colored 3 and 4; with
        # active_ports = [] everywhere, each vertex reduces in
        # isolation and may reuse colors — legal within the declared
        # subgraph (no edges).
        g = star_graph(2)
        result = run_local(
            g,
            algorithm_cls(),
            Model.DET,
            node_inputs=[
                {"color": 5, "active_ports": []},
                {"color": 3, "active_ports": []},
                {"color": 4, "active_ports": []},
            ],
            global_params={"palette": 6, "target": 2},
        )
        assert all(c < 2 for c in result.outputs)


class TestRoundCounts:
    def test_class_by_class_rounds(self, rng):
        g = random_regular_graph(100, 4, rng)
        colors, palette = _initial_coloring(g)
        target = 5
        result = run_local(
            g,
            ClassByClassReduction(),
            Model.DET,
            node_inputs=[{"color": c} for c in colors],
            global_params={"palette": palette, "target": target},
        )
        assert result.rounds <= palette - target

    def test_kw_beats_class_by_class_on_wide_palettes(self, rng):
        g = random_regular_graph(100, 4, rng)
        colors, palette = _initial_coloring(g)
        target = 5
        classic = run_local(
            g,
            ClassByClassReduction(),
            Model.DET,
            node_inputs=[{"color": c} for c in colors],
            global_params={"palette": palette, "target": target},
        )
        kw = run_local(
            g,
            KuhnWattenhoferReduction(),
            Model.DET,
            node_inputs=[{"color": c} for c in colors],
            global_params={"palette": palette, "target": target},
        )
        assert kw.rounds < classic.rounds
        assert KColoring(target).is_solution(g, kw.outputs)

    def test_kw_stage_plan_shrinks(self):
        plan = _kw_stage_plan(1000, 7)
        assert plan[0] == 1000
        assert all(a > b for a, b in zip(plan, plan[1:]))

    def test_kw_stage_plan_trivial(self):
        assert _kw_stage_plan(5, 7) == []

    def test_kw_stage_plan_invalid_target(self):
        with pytest.raises(ValueError):
            _kw_stage_plan(10, 0)

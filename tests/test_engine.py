"""Tests for the LOCAL engine: round semantics, model enforcement,
halting, sleeping, double buffering."""

import pytest

from repro.core import (
    DuplicateIDError,
    Model,
    ModelViolationError,
    SimulationError,
    SyncAlgorithm,
    run_local,
)
from repro.graphs import Graph
from repro.graphs.generators import cycle_graph, path_graph, star_graph


class HaltImmediately(SyncAlgorithm):
    def setup(self, ctx):
        ctx.halt("done")

    def step(self, ctx, inbox):
        raise AssertionError("step must not run after setup-halt")


class CountNeighborsOneRound(SyncAlgorithm):
    def setup(self, ctx):
        ctx.publish("hello")

    def step(self, ctx, inbox):
        ctx.halt(sum(1 for m in inbox if m == "hello"))


class EchoChain(SyncAlgorithm):
    """Propagates the max ID seen; halts after `rounds` global rounds —
    used to verify information travels exactly one hop per round."""

    def setup(self, ctx):
        ctx.state["best"] = ctx.id
        ctx.publish(ctx.id)

    def step(self, ctx, inbox):
        best = max([ctx.state["best"]] + [m for m in inbox if m is not None])
        ctx.state["best"] = best
        ctx.publish(best)
        if ctx.now + 1 >= ctx.globals["rounds"]:
            ctx.halt(best)


class ReadIdUnderRand(SyncAlgorithm):
    def setup(self, ctx):
        _ = ctx.id

    def step(self, ctx, inbox):
        pass


class ReadRandomUnderDet(SyncAlgorithm):
    def setup(self, ctx):
        _ = ctx.random

    def step(self, ctx, inbox):
        pass


class NeverHalts(SyncAlgorithm):
    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        pass


class SleeperAlgorithm(SyncAlgorithm):
    def setup(self, ctx):
        ctx.state["steps"] = 0
        ctx.publish("zzz")
        ctx.sleep_until(5)

    def step(self, ctx, inbox):
        ctx.state["steps"] += 1
        assert ctx.now == 5
        ctx.halt(ctx.state["steps"])


class SameRoundLeakProbe(SyncAlgorithm):
    """Publishes its ID in round 0; in round 0 nobody must see it yet
    (they see setup values), in round 1 everybody must."""

    def setup(self, ctx):
        ctx.publish("setup")

    def step(self, ctx, inbox):
        if ctx.now == 0:
            assert all(m == "setup" for m in inbox)
            ctx.publish(("round0", ctx.id))
        else:
            assert all(m[0] == "round0" for m in inbox)
            ctx.halt(sorted(m[1] for m in inbox))


class FailingAlgorithm(SyncAlgorithm):
    def setup(self, ctx):
        ctx.publish(None)

    def step(self, ctx, inbox):
        if ctx.random.random() < 2.0:  # always
            ctx.fail("induced failure")


class TestRounds:
    def test_zero_round_algorithm(self, ring):
        result = run_local(ring, HaltImmediately(), Model.DET)
        assert result.rounds == 0
        assert result.messages == 0
        assert all(out == "done" for out in result.outputs)

    def test_one_round_neighbor_count(self):
        g = star_graph(5)
        result = run_local(g, CountNeighborsOneRound(), Model.DET)
        assert result.rounds == 1
        assert result.outputs[0] == 5
        assert result.outputs[1] == 1

    def test_information_travels_one_hop_per_round(self):
        g = path_graph(10)
        # Max ID is 9 at the far end; vertex 0 learns it only after 9
        # rounds.
        for budget, expected in [(3, 3), (9, 9)]:
            result = run_local(
                g,
                EchoChain(),
                Model.DET,
                global_params={"rounds": budget},
            )
            assert result.rounds == budget
            assert result.outputs[0] == expected

    def test_no_same_round_leak(self, ring):
        result = run_local(ring, SameRoundLeakProbe(), Model.DET)
        assert result.rounds == 2

    def test_message_accounting(self, ring):
        result = run_local(
            ring, EchoChain(), Model.DET, global_params={"rounds": 4}
        )
        assert result.messages == 4 * 2 * ring.num_edges

    def test_max_rounds_guard(self, ring):
        with pytest.raises(SimulationError):
            run_local(ring, NeverHalts(), Model.DET, max_rounds=10)

    def test_sleeping_skips_steps(self, ring):
        result = run_local(ring, SleeperAlgorithm(), Model.DET)
        assert result.rounds == 6
        assert all(out == 1 for out in result.outputs)


class TestModelEnforcement:
    def test_no_ids_in_rand(self, ring):
        with pytest.raises(ModelViolationError):
            run_local(ring, ReadIdUnderRand(), Model.RAND, seed=0)

    def test_no_random_in_det(self, ring):
        with pytest.raises(ModelViolationError):
            run_local(ring, ReadRandomUnderDet(), Model.DET)

    def test_ids_rejected_in_rand_config(self, ring):
        with pytest.raises(SimulationError):
            run_local(
                ring, HaltImmediately(), Model.RAND, ids=list(range(48))
            )

    def test_duplicate_ids_rejected(self, ring):
        with pytest.raises(DuplicateIDError):
            run_local(ring, HaltImmediately(), Model.DET, ids=[0] * 48)

    def test_wrong_id_count_rejected(self, ring):
        with pytest.raises(DuplicateIDError):
            run_local(ring, HaltImmediately(), Model.DET, ids=[1, 2, 3])

    def test_negative_ids_rejected(self, ring):
        ids = list(range(48))
        ids[0] = -5
        with pytest.raises(DuplicateIDError):
            run_local(ring, HaltImmediately(), Model.DET, ids=ids)


class TestRandomness:
    def test_seed_reproducibility(self, ring):
        class Draw(SyncAlgorithm):
            def setup(self, ctx):
                ctx.halt(ctx.random.getrandbits(32))

            def step(self, ctx, inbox):
                pass

        a = run_local(ring, Draw(), Model.RAND, seed=7)
        b = run_local(ring, Draw(), Model.RAND, seed=7)
        c = run_local(ring, Draw(), Model.RAND, seed=8)
        assert a.outputs == b.outputs
        assert a.outputs != c.outputs

    def test_streams_are_independent(self, ring):
        class Draw(SyncAlgorithm):
            def setup(self, ctx):
                ctx.halt(ctx.random.getrandbits(64))

            def step(self, ctx, inbox):
                pass

        result = run_local(ring, Draw(), Model.RAND, seed=3)
        assert len(set(result.outputs)) == ring.num_vertices

    def test_rng_factory_override(self, ring):
        import random as _random

        class Draw(SyncAlgorithm):
            def setup(self, ctx):
                ctx.halt(ctx.random.getrandbits(16))

            def step(self, ctx, inbox):
                pass

        result = run_local(
            ring,
            Draw(),
            Model.RAND,
            rng_factory=lambda v: _random.Random(42),
        )
        # Every vertex got the same stream: all outputs equal.
        assert len(set(result.outputs)) == 1

    def test_failures_recorded(self):
        g = path_graph(3)
        result = run_local(g, FailingAlgorithm(), Model.RAND, seed=0)
        assert not result.ok
        assert set(result.failures) == {0, 1, 2}


class TestInputs:
    def test_node_inputs_delivered(self):
        g = path_graph(3)

        class ReadInput(SyncAlgorithm):
            def setup(self, ctx):
                ctx.halt(ctx.input["payload"] * 2)

            def step(self, ctx, inbox):
                pass

        result = run_local(
            g,
            ReadInput(),
            Model.DET,
            node_inputs=[{"payload": v} for v in range(3)],
        )
        assert result.outputs == [0, 2, 4]

    def test_reverse_ports_injected(self):
        g = Graph(3, [(0, 1), (1, 2)])

        class CheckReverse(SyncAlgorithm):
            def setup(self, ctx):
                ctx.halt(list(ctx.input["reverse_ports"]))

            def step(self, ctx, inbox):
                pass

        result = run_local(g, CheckReverse(), Model.DET)
        for v in g.vertices():
            for p, q in enumerate(result.outputs[v]):
                u = g.endpoint(v, p)
                assert g.endpoint(u, q) == v

    def test_global_params_shared(self, ring):
        class ReadGlobal(SyncAlgorithm):
            def setup(self, ctx):
                ctx.halt(ctx.globals["magic"])

            def step(self, ctx, inbox):
                pass

        result = run_local(
            ring, ReadGlobal(), Model.DET, global_params={"magic": 99}
        )
        assert all(out == 99 for out in result.outputs)

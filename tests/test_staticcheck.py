"""Tests for the static LOCAL-model conformance analyzer.

Covers: true positives for every LM rule (seeded fixtures), zero false
positives on a conformant fixture AND on the shipped algorithm suite,
suppression-comment handling, JSON schema round-trip, model binding
through inheritance/local variables/dual registration, and the
``repro lint`` CLI gate.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.staticcheck import (
    DIAGNOSTIC_JSON_KEYS,
    JSON_VERSION,
    RULES,
    Diagnostic,
    Severity,
    analyze_paths,
    load_corpus,
    max_severity,
    parse_suppressions,
)
from repro.staticcheck.bindings import bind_models
from repro.staticcheck.callgraph import CallGraph

FIXTURES = Path(__file__).parent / "fixtures" / "staticcheck"
PACKAGE_DIR = Path(repro.__file__).resolve().parent


def analyze_fixture(name):
    return analyze_paths([FIXTURES / name])


class TestRuleTruePositives:
    """Each rule catches its seeded violation, and nothing else fires
    in that fixture (per-fixture precision)."""

    @pytest.mark.parametrize(
        "fixture, rule, count",
        [
            ("lm001_bad.py", "LM001", 2),
            ("lm001_alias.py", "LM001", 2),
            ("lm002_bad.py", "LM002", 1),
            ("lm003_bad.py", "LM003", 2),
            ("lm004_bad.py", "LM004", 4),
            ("lm005_bad.py", "LM005", 3),
            ("lm006_bad.py", "LM006", 2),
            ("lm007_bad.py", "LM007", 2),
            ("lm008_bad.py", "LM008", 9),
            ("lm009_bad.py", "LM009", 4),
            ("lm010_bad.py", "LM010", 2),
            ("lm011_bad.py", "LM011", 2),
            ("lm012_bad.py", "LM012", 6),
        ],
    )
    def test_rule_catches_seeded_violation(self, fixture, rule, count):
        result = analyze_fixture(fixture)
        assert {d.rule_id for d in result.diagnostics} == {rule}
        assert len(result.diagnostics) == count
        for diag in result.diagnostics:
            assert diag.path.endswith(fixture)
            assert diag.line > 0
            assert diag.message
            assert diag.hint
            assert diag.severity is RULES[rule].severity

    def test_violation_found_through_call_graph_not_grep(self):
        # The ctx.random read in lm001_bad.py sits in a helper two
        # calls below the entry point; the chain must say so.
        result = analyze_fixture("lm001_bad.py")
        chains = {tuple(d.chain) for d in result.diagnostics}
        assert ("SneakyDet.step", "SneakyDet._pick") in chains

    def test_inherited_entry_point_is_followed(self):
        result = analyze_fixture("inherited_bad.py")
        assert [d.rule_id for d in result.diagnostics] == ["LM001"]
        assert result.diagnostics[0].chain == ("NoisyBase.step",)

    def test_dual_bound_class_checked_under_both_models(self):
        result = analyze_fixture("dual_bound.py")
        assert {d.rule_id for d in result.diagnostics} == {
            "LM001",
            "LM002",
        }


class TestNoFalsePositives:
    def test_clean_fixture_is_clean(self):
        result = analyze_fixture("clean_algos.py")
        assert result.clean, result.render_text()
        assert not result.suppressed

    def test_shipped_algorithm_suite_is_violation_free(self):
        """The repo-wide conformance gate: every shipped algorithm,
        LCL checker, and transform passes all LM rules (documented
        exceptions are suppressed inline with justification)."""
        result = analyze_paths([PACKAGE_DIR])
        assert result.clean, result.render_text()

    def test_shipped_suppressions_are_documented_exceptions_only(self):
        result = analyze_paths([PACKAGE_DIR])
        # Only the documented exceptions are waived: the two ctx.now
        # output contracts and the two Linial degenerate-ID-space
        # halts (the schedule-length guard proves the IDs already form
        # a valid coloring, which the radius lattice cannot see).  New
        # suppressions must be added deliberately (update this test
        # alongside a justifying comment).
        assert sorted(
            (Path(d.path).name, d.rule_id) for d in result.suppressed
        ) == [
            ("linial.py", "LM010"),
            ("linial.py", "LM010"),
            ("matching.py", "LM006"),
            ("tree_coloring.py", "LM006"),
        ]


class TestSuppressions:
    def test_suppressed_findings_are_filtered_but_counted(self):
        result = analyze_fixture("suppressed.py")
        assert result.clean
        assert [d.rule_id for d in result.suppressed] == [
            "LM006",
            "LM006",
            "LM001",
        ]

    def test_parse_suppressions_forms(self):
        source = (
            "x = 1  # repro: ignore[LM001]\n"
            "y = 2  # repro: ignore[LM002, LM003]\n"
            "z = 3  # repro: ignore\n"
        )
        codes = parse_suppressions(source)
        assert codes[1] == {"LM001"}
        assert codes[2] == {"LM002", "LM003"}
        assert codes[3] == {"*"}

    def test_unrelated_rule_not_suppressed(self):
        corpus = load_corpus([FIXTURES / "suppressed.py"])
        module = corpus[0]
        line = next(iter(module.suppressions))
        assert module.is_suppressed(line, "LM006")
        assert not module.is_suppressed(line, "LM004")


class TestBindings:
    def test_models_bound_from_run_local_sites(self):
        corpus = load_corpus(
            [FIXTURES / "dual_bound.py", FIXTURES / "lm001_bad.py"]
        )
        bindings = bind_models(CallGraph(corpus))
        assert bindings["BothWays"].models == {"DET", "RAND"}
        # Bound through a local variable assignment in the driver.
        assert bindings["SneakyDet"].models == {"DET"}

    def test_shipped_suite_binds_both_models(self):
        corpus = load_corpus([PACKAGE_DIR / "algorithms"])
        bindings = bind_models(CallGraph(corpus))
        bound = {
            name: b.models for name, b in bindings.items() if b.models
        }
        assert bound["LubyMIS"] == {"RAND"}
        assert bound["LinialColoring"] == {"DET"}
        assert bound["MISFromColoring"] == {"DET"}
        # Every binding carries at least one call site for diagnostics.
        for name in bound:
            assert bindings[name].sites


class TestJsonOutput:
    def test_diagnostic_round_trip(self):
        result = analyze_fixture("lm005_bad.py")
        for diag in result.diagnostics:
            data = diag.to_dict()
            assert tuple(sorted(data)) == tuple(
                sorted(DIAGNOSTIC_JSON_KEYS)
            )
            clone = Diagnostic.from_dict(
                json.loads(json.dumps(data))
            )
            assert clone == diag

    def test_result_schema(self):
        result = analyze_fixture("lm001_bad.py")
        data = json.loads(result.to_json())
        assert data["version"] == JSON_VERSION
        assert data["files_analyzed"] == 1
        assert data["summary"]["errors"] == 2
        assert data["summary"]["warnings"] == 0
        assert set(data["rules"]) == set(RULES)
        for spec in data["rules"].values():
            assert spec["severity"] in ("error", "warning")
            assert spec["rationale"]

    def test_max_severity(self):
        errors = analyze_fixture("lm001_bad.py").diagnostics
        warnings = analyze_fixture("lm006_bad.py").diagnostics
        assert max_severity(errors) is Severity.ERROR
        assert max_severity(warnings) is Severity.WARNING
        assert max_severity([]) is None


class TestLintCLI:
    def test_lint_errors_exit_nonzero(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "lm001_bad.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "LM001" in out and "error" in out

    def test_lint_clean_exits_zero(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "clean_algos.py")])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_lint_warnings_gate_only_under_strict(self, capsys):
        target = str(FIXTURES / "lm006_bad.py")
        assert cli_main(["lint", target]) == 0
        assert cli_main(["lint", "--strict", target]) == 1
        capsys.readouterr()

    def test_lint_json_format(self, capsys):
        code = cli_main(
            ["lint", "--format", "json", str(FIXTURES / "lm002_bad.py")]
        )
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["errors"] == 1
        assert data["diagnostics"][0]["rule_id"] == "LM002"

    def test_lint_missing_path_is_a_usage_error(self, capsys):
        """A typo'd path must not read as a clean gate."""
        code = cli_main(["lint", "does/not/exist.py"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unparsable_file_is_an_error_finding(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        result = analyze_paths([bad])
        assert [d.rule_id for d in result.diagnostics] == ["PARSE"]
        assert max_severity(result.diagnostics) is Severity.ERROR
        assert cli_main(["lint", str(bad)]) == 1
        capsys.readouterr()

    def test_lint_default_target_is_shipped_package(self, capsys):
        """`repro lint` with no path gates the installed package —
        and the installed package is conformant."""
        assert cli_main(["lint", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["errors"] == 0
        assert data["summary"]["warnings"] == 0
        assert data["files_analyzed"] >= 70

"""The verification subsystem itself: generators, shrinking,
certificates, the harness sweep, and the ``repro verify`` CLI."""

import json
from pathlib import Path

import pytest

from repro.algorithms.drivers import (
    AlgorithmReport,
    DriverSpec,
    PhaseLog,
    driver_registry,
    get_driver,
    validate_registry,
)
from repro.cli import main as cli_main
from repro.core.context import Model
from repro.core.errors import VerificationError
from repro.graphs.generators import cycle_graph, path_graph
from repro.lcl import KColoring, LCLProblem
from repro.lcl.problem import BallRestrictedLabeling
from repro.verify import (
    CERTIFICATE_SCHEMA,
    CERTIFICATE_VERSION,
    certify,
    make_instance,
    permute_ports,
    permute_vertices,
    run_verification,
    shrink_instance,
    shuffled_ids,
    trial_seeds,
    write_counterexamples,
)
from repro.verify.gen import random_permutation

GOLDEN = Path(__file__).parent / "fixtures"


def _cycle(n, rng):
    return cycle_graph(max(3, n))


# ----------------------------------------------------------------------
# Generators and shrinking
# ----------------------------------------------------------------------
def test_instances_are_pure_functions_of_the_seed():
    a = make_instance(_cycle, 24, 7)
    b = make_instance(_cycle, 24, 7)
    assert a.graph == b.graph
    assert a.ids == b.ids
    assert a.run_seed == b.run_seed
    different = make_instance(_cycle, 24, 8)
    assert (
        different.ids != a.ids or different.run_seed != a.run_seed
    )


def test_shuffled_ids_is_a_dense_permutation():
    ids = shuffled_ids(40, 3)
    assert sorted(ids) == list(range(40))
    assert ids != list(range(40))


def test_trial_seeds_are_distinct_and_reproducible():
    seeds = trial_seeds(99, 16)
    assert len(set(seeds)) == 16
    assert seeds == trial_seeds(99, 16)


def test_shrink_finds_the_minimal_failing_size():
    # Failure predicate "n >= 7" on a size-exact family: the halve-
    # and-retest ladder must land exactly on 7, not merely below the
    # start.
    start = make_instance(_cycle, 24, 0)
    shrunk = shrink_instance(
        start, lambda inst: inst.n >= 7, _cycle, 3
    )
    assert shrunk.n == 7


def test_shrink_respects_the_family_floor():
    start = make_instance(_cycle, 24, 0)
    shrunk = shrink_instance(
        start, lambda inst: True, _cycle, 5
    )
    assert shrunk.requested_n == 5


def test_permute_ports_preserves_adjacency_not_ports():
    g = make_instance(_cycle, 12, 1).graph
    h = permute_ports(g, 5)
    assert h.num_vertices == g.num_vertices
    for v in g.vertices():
        assert sorted(h.neighbors(v)) == sorted(g.neighbors(v))
    assert any(
        list(h.neighbors(v)) != list(g.neighbors(v))
        for v in g.vertices()
    )


def test_permute_vertices_preserves_port_structure():
    g = path_graph(9)
    perm = random_permutation(9, 11)
    h = permute_vertices(g, perm)
    for v in g.vertices():
        assert h.degree(perm[v]) == g.degree(v)
        for p in range(g.degree(v)):
            assert h.endpoint(perm[v], p) == perm[g.endpoint(v, p)]
            assert h.reverse_port(perm[v], p) == g.reverse_port(v, p)


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------
def test_certificate_accepts_a_proper_coloring():
    g = cycle_graph(6)
    cert = certify(
        KColoring(2), g, [0, 1, 0, 1, 0, 1],
        driver="demo", rounds=3, bound=10.0, bound_label="O(1)",
    )
    assert cert.valid and cert.ok
    assert cert.rounds_within_bound is True
    assert cert.checked_balls == 6 and cert.violation_count == 0


def test_certificate_names_the_violating_balls():
    g = path_graph(4)
    cert = certify(KColoring(2), g, [0, 0, 1, 0])
    assert not cert.valid
    assert [v.vertex for v in cert.violations] == [0, 1]
    assert cert.violations[0].ball == [0, 1]
    # No bound declared -> no round audit, validity alone decides.
    assert cert.rounds_within_bound is None and not cert.ok


def test_certificate_round_audit_fails_on_bound_excess():
    g = cycle_graph(4)
    cert = certify(
        KColoring(2), g, [0, 1, 0, 1], rounds=99, bound=10.0,
        bound_label="O(1)",
    )
    assert cert.valid and cert.rounds_within_bound is False
    assert not cert.ok


def test_certificate_golden_file():
    g = path_graph(4)
    cert = certify(
        KColoring(2), g, [0, 0, 1, 0],
        driver="golden-driver", rounds=7, bound=5.0,
        bound_label="O(1) demo",
    )
    expected = (
        (GOLDEN / "verify_certificate_golden.json")
        .read_text()
        .strip()
    )
    assert cert.to_json() == expected
    payload = json.loads(cert.to_json())
    assert payload["schema"] == CERTIFICATE_SCHEMA
    assert payload["version"] == CERTIFICATE_VERSION


def test_certificate_serialization_is_canonical():
    g = cycle_graph(5)
    certs = [
        certify(KColoring(3), g, [0, 1, 0, 1, 2]) for _ in range(2)
    ]
    assert certs[0].to_json() == certs[1].to_json()
    # sorted keys, compact separators
    assert '"schema":"repro.verify.certificate"' in certs[0].to_json()


class _PeekingProblem(LCLProblem):
    """A cheating checker that reads a label outside its radius-1
    ball."""

    name = "peeking"

    def check_vertex(self, graph, v, labeling, inputs=None):
        far = (v + 2) % graph.num_vertices
        labeling[far]
        return None


def test_check_ball_rejects_non_local_checkers():
    g = cycle_graph(8)
    problem = _PeekingProblem()
    # The whole-labeling convenience path cannot see the violation...
    assert problem.check_vertex(g, 0, [0] * 8) is None
    # ...but the certificate path masks the labeling to N^1(v).
    with pytest.raises(VerificationError, match="non-local read"):
        problem.check_ball(g, 0, [0] * 8)


def test_ball_restricted_labeling_allows_reads_inside_the_ball():
    g = path_graph(5)
    restricted = BallRestrictedLabeling(
        [10, 11, 12, 13, 14], g.ball(2, 1), 2, 1
    )
    assert restricted[1] == 11 and restricted[3] == 13
    assert len(restricted) == 5
    with pytest.raises(VerificationError):
        restricted[0]


# ----------------------------------------------------------------------
# Driver registry metadata
# ----------------------------------------------------------------------
def test_registry_validates_clean():
    validate_registry()


def test_registry_covers_every_driver_with_metadata():
    registry = driver_registry()
    assert len(registry) >= 10
    for spec in registry.values():
        assert spec.problem is not None
        assert spec.bound is not None and spec.bound_label
        assert spec.make_graph is not None and spec.min_n >= 2
        assert spec.accepts_ids or spec.accepts_seed


def test_registry_rejects_missing_metadata():
    good = get_driver("deterministic-mis")
    from dataclasses import replace

    with pytest.raises(VerificationError, match="bound_label"):
        validate_registry(
            {"bad": replace(good, name="bad", bound_label="")}
        )
    with pytest.raises(VerificationError, match="does not match"):
        validate_registry({"other-name": good})
    with pytest.raises(VerificationError, match="must not consume"):
        validate_registry(
            {"bad": replace(good, name="bad", accepts_seed=True)}
        )


def test_get_driver_unknown_name_lists_the_registry():
    with pytest.raises(VerificationError, match="deterministic-mis"):
        get_driver("no-such-driver")


def test_driver_spec_run_rejects_unsupported_knobs():
    spec = get_driver("luby-mis")
    g = spec.make_graph(spec.quick_n, __import__("random").Random(0))
    with pytest.raises(VerificationError, match="ID assignment"):
        spec.run(g, ids=list(range(g.num_vertices)))


# ----------------------------------------------------------------------
# Harness sweep (the tier-1 acceptance gate) and CLI
# ----------------------------------------------------------------------
def test_quick_sweep_passes_over_all_shipped_drivers():
    report = run_verification(quick=True)
    assert report.ok, "\n".join(report.summary_lines())
    drivers = {cell.driver for cell in report.cells}
    assert drivers == set(driver_registry())
    # Every driver gets a certificate cell plus >= 4 relation cells.
    for name in drivers:
        cells = [c for c in report.cells if c.driver == name]
        assert {c.relation for c in cells} >= {
            "certificate",
            "port-permutation",
            "engine-equivalence",
            "observer-neutrality",
            "fault-determinism",
        }


def _broken_registry():
    """One registered driver whose labeling never satisfies its LCL."""

    def invoke(graph, ids, seed):
        return AlgorithmReport(
            labeling=[0] * graph.num_vertices, rounds=1, log=PhaseLog()
        )

    spec = DriverSpec(
        name="always-zero",
        model=Model.DET,
        invoke=invoke,
        problem=lambda g: KColoring(2),
        bound=lambda n, delta: 10.0,
        bound_label="O(1)",
        make_graph=_cycle,
        min_n=3,
        accepts_ids=True,
    )
    return {"always-zero": spec}


def test_sweep_reports_and_shrinks_certificate_failures(tmp_path):
    report = run_verification(
        registry=_broken_registry(),
        quick=True,
        relation_names=[],
    )
    assert not report.ok
    examples = report.counterexamples()
    assert examples and examples[0].relation == "certificate"
    assert examples[0].instance["n"] == 3  # shrunk to the floor
    assert examples[0].shrunk_from_n >= examples[0].instance["n"]

    out = tmp_path / "ce.jsonl"
    written = write_counterexamples(report, str(out))
    lines = out.read_text().splitlines()
    assert written == len(examples) == len(lines)
    record = json.loads(lines[0])
    assert record["driver"] == "always-zero"
    assert record["relation"] == "certificate"
    # canonical form: keys sorted in the serialized line
    keys = list(json.loads(lines[0]).keys())
    assert keys == sorted(keys)


def test_sweep_is_reproducible():
    kwargs = dict(
        registry=_broken_registry(), quick=True, relation_names=[]
    )
    first = run_verification(**kwargs)
    second = run_verification(**kwargs)
    assert [c.to_dict() for c in first.counterexamples()] == [
        c.to_dict() for c in second.counterexamples()
    ]


def test_sweep_unknown_driver_name_raises():
    with pytest.raises(KeyError):
        run_verification(drivers=["no-such-driver"], quick=True)


def test_cli_verify_quick_exits_zero(capsys):
    assert cli_main(["verify", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "cells" in out and "0 failing" in out


def test_cli_verify_list_relations(capsys):
    assert cli_main(["verify", "--list-relations"]) == 0
    out = capsys.readouterr().out
    for name in (
        "id-relabeling",
        "port-permutation",
        "vertex-order",
        "engine-equivalence",
        "observer-neutrality",
        "fault-determinism",
        "order-invariance",
    ):
        assert name in out


def test_cli_verify_unknown_driver_exits_two(capsys):
    assert cli_main(["verify", "--driver", "nope", "--quick"]) == 2
    assert "unknown driver" in capsys.readouterr().err


def test_cli_verify_writes_empty_report_when_clean(tmp_path, capsys):
    out = tmp_path / "counterexamples.jsonl"
    code = cli_main(
        [
            "verify",
            "--quick",
            "--driver",
            "deterministic-sinkless",
            "--report",
            str(out),
        ]
    )
    assert code == 0
    assert out.exists() and out.read_text() == ""

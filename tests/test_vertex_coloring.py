"""Tests for the (Δ+1)-coloring pipeline and locally-unique-ID runs."""

import pytest

from repro.algorithms import delta_plus_one_coloring
from repro.core import DuplicateIDError, Model, run_local
from repro.core.algorithm import SyncAlgorithm
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_regular_graph,
    random_tree_bounded_degree,
    star_graph,
)
from repro.lcl import KColoring


class TestDeltaPlusOne:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: path_graph(150),
            lambda rng: cycle_graph(99),
            lambda rng: star_graph(9),
            lambda rng: random_regular_graph(120, 5, rng),
            lambda rng: random_tree_bounded_degree(200, 7, rng),
        ],
    )
    @pytest.mark.parametrize("reduction", ["kw", "classic"])
    def test_valid_coloring(self, factory, reduction, rng):
        g = factory(rng)
        report = delta_plus_one_coloring(g, reduction=reduction)
        assert KColoring(g.max_degree + 1).is_solution(g, report.labeling)

    def test_unknown_reduction(self, small_tree):
        with pytest.raises(ValueError):
            delta_plus_one_coloring(small_tree, reduction="magic")

    def test_kw_not_slower_than_classic(self, rng):
        g = random_regular_graph(150, 6, rng)
        kw = delta_plus_one_coloring(g, reduction="kw")
        classic = delta_plus_one_coloring(g, reduction="classic")
        assert kw.rounds <= classic.rounds
        assert kw.breakdown["linial"] == classic.breakdown["linial"]

    def test_flat_in_n(self):
        rounds = []
        for n in (128, 2048, 32768):
            g = path_graph(n)
            rounds.append(delta_plus_one_coloring(g).rounds)
        assert rounds[-1] <= rounds[0] + 3


class TestLocallyUniqueIDs:
    def test_duplicates_rejected_by_default(self, ring):
        ids = [v % 24 for v in range(48)]
        with pytest.raises(DuplicateIDError):
            delta_plus_one_coloring(ring, ids=ids)

    def test_distant_duplicates_accepted_with_flag(self):
        # IDs repeat with period 16 on a long path: unique within any
        # radius-7 ball, which is all the pipeline's ID-sensitive
        # prefix (Linial, depth <= 3) ever inspects.
        g = path_graph(256)
        ids = [v % 16 for v in range(256)]
        report = delta_plus_one_coloring(
            g, ids=ids, id_space=16, allow_duplicate_ids=True
        )
        assert KColoring(3).is_solution(g, report.labeling)

    def test_engine_flag_scope(self):
        # The flag only waives the configuration check; the algorithm
        # still sees whatever IDs were given.
        g = path_graph(8)

        class ReadId(SyncAlgorithm):
            def setup(self, ctx):
                ctx.halt(ctx.id)

            def step(self, ctx, inbox):
                pass

        ids = [0, 1, 2, 3, 0, 1, 2, 3]
        result = run_local(
            g, ReadId(), Model.DET, ids=ids, allow_duplicate_ids=True
        )
        assert result.outputs == ids

"""Telemetry layer: observer hooks, metrics, JSONL traces.

Pins the tentpole contracts of the observability subsystem:

- event ordering and content, identical across the fast and reference
  engines (the determinism contract extended to telemetry);
- zero interference: attaching observers never changes the RunResult;
- MetricsObserver counters/histograms and ball-growth locality
  accounting;
- JSONL traces byte-identical across repeated runs and engines, with a
  versioned schema that round-trips through read_trace;
- run_sweep per-cell summaries bit-identical serial vs pooled, with
  clear TelemetryError failures for unusable observers.
"""

import io
import json
import random

import pytest

from repro.algorithms import luby_mis
from repro.analysis.experiments import ExperimentRecord, run_sweep
from repro.core import (
    Model,
    SETUP_ROUND,
    SyncAlgorithm,
    TelemetryError,
    observe_runs,
    run_local,
    run_local_reference,
)
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.obs import (
    JsonlTraceObserver,
    MetricsObserver,
    MetricsRegistry,
    RunObserver,
    estimate_payload_bytes,
    merge_summaries,
    read_trace,
)


class Recorder(RunObserver):
    """Append every event as a comparable tuple."""

    def __init__(self):
        self.events = []

    def on_run_start(self, meta):
        self.events.append(
            (
                "run_start",
                meta.algorithm,
                meta.model.name,
                meta.n,
                meta.num_edges,
                meta.max_degree,
                meta.max_rounds,
                meta.seed,
            )
        )

    def on_round_start(self, round_index, active):
        self.events.append(("round_start", round_index, active))

    def on_node_step(self, round_index, vertex, ctx):
        self.events.append(("step", round_index, vertex))

    def on_publish(self, round_index, vertex, value):
        self.events.append(("publish", round_index, vertex, value))

    def on_halt(self, round_index, vertex, output):
        self.events.append(("halt", round_index, vertex, output))

    def on_failure(self, round_index, vertex, reason):
        self.events.append(("failure", round_index, vertex, reason))

    def on_round_end(self, round_index, awake, halted, messages):
        self.events.append(
            ("round_end", round_index, awake, halted, messages)
        )

    def on_run_end(self, result):
        self.events.append(
            ("run_end", result.rounds, result.messages)
        )


class TwoRound(SyncAlgorithm):
    """Publish in setup, count neighbors in round 0, halt in round 1."""

    name = "two-round"

    def setup(self, ctx):
        ctx.publish(1)

    def step(self, ctx, inbox):
        if ctx.now == 0:
            ctx.publish(sum(m for m in inbox if m))
        else:
            ctx.halt(("done", ctx.now))


class SleepyHalter(SyncAlgorithm):
    """Sleeps through a span of rounds (bulk-skipped by the fast
    engine), then halts — some vertices fail instead."""

    name = "sleepy-halter"

    def setup(self, ctx):
        ctx.publish(("t", ctx.input["wake"]))
        ctx.sleep_until(ctx.input["wake"])

    def step(self, ctx, inbox):
        if ctx.input["wake"] % 7 == 3:
            ctx.fail("planned")
        else:
            ctx.halt(ctx.input["wake"])


def record_events(engine, graph, algorithm, model, **kwargs):
    rec = Recorder()
    result = engine(
        graph, algorithm, model, observers=[rec], **kwargs
    )
    return rec.events, result


class TestEventStream:
    def test_exact_sequence_on_tiny_graph(self):
        graph = path_graph(2)
        events, result = record_events(
            run_local, graph, TwoRound(), Model.DET
        )
        m = 2 * graph.num_edges
        assert events == [
            ("run_start", "two-round", "DET", 2, 1, 1, 100_000, None),
            ("publish", SETUP_ROUND, 0, 1),
            ("publish", SETUP_ROUND, 1, 1),
            ("round_start", 0, 2),
            ("step", 0, 0),
            ("publish", 0, 0, 1),
            ("step", 0, 1),
            ("publish", 0, 1, 1),
            ("round_end", 0, 2, 0, m),
            ("round_start", 1, 2),
            ("step", 1, 0),
            ("halt", 1, 0, ("done", 1)),
            ("step", 1, 1),
            ("halt", 1, 1, ("done", 1)),
            ("round_end", 1, 2, 2, m),
            ("run_end", result.rounds, result.messages),
        ]

    @pytest.mark.parametrize("n", [12, 30])
    def test_fast_and_reference_streams_identical(self, n):
        graph = cycle_graph(n)
        inputs = [{"wake": (v * 5) % 17 + (v % 2) * 30} for v in range(n)]
        fast_events, fast = record_events(
            run_local, graph, SleepyHalter(), Model.DET,
            node_inputs=inputs,
        )
        ref_events, ref = record_events(
            run_local_reference, graph, SleepyHalter(), Model.DET,
            node_inputs=inputs,
        )
        assert fast_events == ref_events
        assert fast.outputs == ref.outputs

    def test_bulk_skipped_rounds_emit_synthesized_events(self):
        n = 10
        graph = cycle_graph(n)
        inputs = [{"wake": 20} for _ in range(n)]
        events, _ = record_events(
            run_local, graph, SleepyHalter(), Model.DET,
            node_inputs=inputs,
        )
        m = 2 * graph.num_edges
        # Rounds 0..19 are bulk-skipped: every vertex parked, no steps.
        for r in range(20):
            assert ("round_start", r, n) in events
            assert ("round_end", r, 0, 0, m) in events
        assert not any(
            e[0] == "step" and e[1] < 20 for e in events
        )

    def test_observers_do_not_change_result(self):
        graph = cycle_graph(24)
        inputs = [{"wake": v % 9} for v in range(24)]
        plain = run_local(
            graph, SleepyHalter(), Model.DET,
            node_inputs=inputs, trace=True,
        )
        _, observed = record_events(
            run_local, graph, SleepyHalter(), Model.DET,
            node_inputs=inputs, trace=True,
        )
        assert plain.outputs == observed.outputs
        assert plain.trace == observed.trace
        assert plain.messages == observed.messages

    def test_observe_runs_is_ambient_and_restores(self):
        rec = Recorder()
        graph = path_graph(3)
        with observe_runs(rec):
            run_local(graph, TwoRound(), Model.DET)
            first = len(rec.events)
            assert first > 0
            run_local(graph, TwoRound(), Model.DET)
            assert len(rec.events) == 2 * first
        run_local(graph, TwoRound(), Model.DET)
        assert len(rec.events) == 2 * first  # detached again

    def test_observe_runs_nests(self):
        outer, inner = Recorder(), Recorder()
        graph = path_graph(2)
        with observe_runs(outer):
            with observe_runs(inner):
                run_local(graph, TwoRound(), Model.DET)
        assert outer.events == inner.events
        assert outer.events

    def test_max_rounds_raise_stops_stream_without_run_end(self):
        class Forever(SyncAlgorithm):
            name = "forever"

            def setup(self, ctx):
                ctx.publish(0)

            def step(self, ctx, inbox):
                ctx.publish(ctx.now)

        from repro.core import SimulationError

        streams = []
        for engine in (run_local, run_local_reference):
            rec = Recorder()
            with pytest.raises(SimulationError):
                engine(
                    cycle_graph(6), Forever(), Model.DET,
                    max_rounds=5, observers=[rec],
                )
            streams.append(rec.events)
            assert not any(e[0] == "run_end" for e in rec.events)
            assert max(
                e[1] for e in rec.events if e[0] == "round_end"
            ) == 4
        assert streams[0] == streams[1]


class TestMetrics:
    def test_registry_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2.5)
        hist = reg.histogram("h")
        for v in (1.0, 3.0):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3}
        assert snap["g"] == {"type": "gauge", "value": 2.5}
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == 2.0
        with pytest.raises(TypeError):
            reg.gauge("c")

    def test_observer_counts_match_run(self):
        graph = cycle_graph(20)
        obs = MetricsObserver()
        result = run_local(
            graph, TwoRound(), Model.DET,
            observers=[obs], trace=True,
        )
        metrics = obs.summary()["metrics"]
        assert metrics["rounds_total"]["value"] == result.rounds
        assert metrics["messages_total"]["value"] == result.messages
        assert metrics["halted_total"]["value"] == 20
        # setup + round-0 publishes: 2 per vertex
        assert metrics["publishes_total"]["value"] == 40
        assert obs.round_curves[0][0]["awake"] == 20

    def test_locality_radius_ball_growth(self):
        # TwoRound reads neighbors twice: info radius 2 at halt.
        graph = path_graph(8)
        obs = MetricsObserver()
        run_local(graph, TwoRound(), Model.DET, observers=[obs])
        radius = obs.summary()["metrics"]["locality_radius"]
        assert radius["max"] == 2
        assert radius["count"] == 8

    def test_locality_radius_on_star(self):
        # The hub hears all leaves each round; radius still grows by
        # one hop per round of listening.
        graph = star_graph(5)
        obs = MetricsObserver()
        run_local(graph, TwoRound(), Model.DET, observers=[obs])
        assert obs.summary()["metrics"]["locality_radius"]["max"] == 2

    def test_estimate_payload_bytes_deterministic(self):
        class Opaque:
            pass

        value = {"k": [1, 2.5, "abc", (True, None)], "s": {3, 1}}
        assert estimate_payload_bytes(value) == estimate_payload_bytes(
            value
        )
        # Opaque objects cost a flat size — never their repr (which
        # embeds a memory address).
        assert estimate_payload_bytes(Opaque()) == estimate_payload_bytes(
            Opaque()
        )
        assert estimate_payload_bytes(255) == 1
        assert estimate_payload_bytes(256) == 2

    def test_merge_summaries_is_order_insensitive(self):
        graph = cycle_graph(16)
        summaries = []
        for seed in (0, 1, 2):
            obs = MetricsObserver()
            with observe_runs(obs):
                luby_mis(graph, seed=seed)
            summaries.append(obs.summary())
        forward = merge_summaries(summaries)
        backward = merge_summaries(list(reversed(summaries)))
        assert forward == backward
        assert forward["runs"] == sum(s["runs"] for s in summaries)
        assert forward["metrics"]["halted_total"]["value"] == sum(
            s["metrics"]["halted_total"]["value"] for s in summaries
        )


class TestJsonlTrace:
    def run_traced(self, engine, **trace_kwargs):
        graph = cycle_graph(18)
        inputs = [{"wake": v % 6} for v in range(18)]
        buf = io.StringIO()
        obs = JsonlTraceObserver(buf, **trace_kwargs)
        engine(
            graph, SleepyHalter(), Model.DET,
            node_inputs=inputs, observers=[obs],
        )
        return buf.getvalue()

    def test_byte_identical_across_repeats_and_engines(self):
        first = self.run_traced(run_local, payload_values=True)
        second = self.run_traced(run_local, payload_values=True)
        reference = self.run_traced(
            run_local_reference, payload_values=True
        )
        assert first == second == reference

    def test_schema_and_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        graph = cycle_graph(10)
        obs = JsonlTraceObserver(path, payload_values=True)
        run_local(graph, TwoRound(), Model.DET, observers=[obs])
        obs.close()
        events = read_trace(path)
        start = events[0]
        assert start["event"] == "run_start"
        assert start["schema"] == "repro.obs.trace"
        assert start["version"] == 3
        assert start["emission_modes"] == ["per-event", "batched"]
        assert start["n"] == 10
        assert len(start["edges"]) == graph.num_edges
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "run_end"
        assert "round_start" in kinds and "halt" in kinds
        # Every line is standalone JSON with sorted keys.
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                obj = json.loads(line)
                assert list(obj) == sorted(obj)

    def test_values_canonicalized(self, tmp_path):
        class Odd:
            pass

        class Loud(SyncAlgorithm):
            name = "loud"

            def setup(self, ctx):
                ctx.publish({(1, 2): {3, 1}, "o": Odd()})

            def step(self, ctx, inbox):
                ctx.halt(0)

        path = str(tmp_path / "t.jsonl")
        obs = JsonlTraceObserver(path, payload_values=True)
        run_local(path_graph(2), Loud(), Model.DET, observers=[obs])
        obs.close()
        publish = next(
            e for e in read_trace(path) if e["event"] == "publish"
        )
        assert publish["value"]["[1, 2]"] == [1, 3]
        assert publish["value"]["o"] == {"__opaque__": "Odd"}

    def test_read_trace_run_filter(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        graph = path_graph(3)
        obs = JsonlTraceObserver(path)
        with observe_runs(obs):
            run_local(graph, TwoRound(), Model.DET)
            run_local(graph, TwoRound(), Model.DET)
        obs.close()
        all_events = read_trace(path)
        assert {e["run"] for e in all_events} == {0, 1}
        only_second = read_trace(path, run=1)
        assert all(e["run"] == 1 for e in only_second)
        with pytest.raises(ValueError, match="no events for run 7"):
            read_trace(path, run=7)


def _sweep_measure(x, seed):
    return float(luby_mis(cycle_graph(int(x)), seed=seed).rounds)


class TestSweepTelemetry:
    def test_pooled_summaries_bit_identical_to_serial(self):
        kwargs = dict(
            xs=[16, 24],
            measure=_sweep_measure,
            seeds=(0, 1),
            observer_factory=MetricsObserver,
        )
        serial = run_sweep("obs-sweep", **kwargs)
        pooled = run_sweep("obs-sweep", workers=2, **kwargs)
        assert [p.values for p in serial.points] == [
            p.values for p in pooled.points
        ]
        assert serial.cell_telemetry == pooled.cell_telemetry
        assert serial.telemetry() == pooled.telemetry()
        assert len(serial.cell_telemetry) == 4
        # Grid order: x-major, then seed.
        assert [
            (c["x"], c["seed"]) for c in serial.cell_telemetry
        ] == [(16, 0), (16, 1), (24, 0), (24, 1)]

    def test_no_factory_means_no_telemetry(self):
        series = run_sweep(
            "plain", [16], _sweep_measure, seeds=(0,)
        )
        assert series.cell_telemetry == []
        assert series.telemetry() is None

    def test_unpicklable_summary_raises_clear_error(self):
        class BadSummary(RunObserver):
            def summary(self):
                return {"closure": lambda: 1}

        with pytest.raises(TelemetryError, match="not picklable"):
            run_sweep(
                "bad",
                [16, 24],
                _sweep_measure,
                seeds=(0, 1),
                workers=2,
                observer_factory=BadSummary,
            )

    def test_observer_without_summary_raises(self):
        class NoSummary(RunObserver):
            pass

        with pytest.raises(TelemetryError, match="no summary"):
            run_sweep(
                "bad",
                [16],
                _sweep_measure,
                seeds=(0,),
                observer_factory=NoSummary,
            )

    def test_experiment_record_renders_telemetry(self):
        series = run_sweep(
            "obs-sweep",
            [16],
            _sweep_measure,
            seeds=(0,),
            observer_factory=MetricsObserver,
        )
        record = ExperimentRecord("EX", "telemetry demo")
        record.add_series(series)
        rendered = record.render()
        assert "telemetry: obs-sweep" in rendered
        assert "halted_total" in rendered

"""Seeded LM009 violations: node code swallowing injected faults.

Never imported — analyzed as source by tests/test_staticcheck.py.
"""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local
from repro.core.errors import BudgetExceededError, FaultEvent


class FaultSwallower(SyncAlgorithm):
    """Catches everything in step(), eating injected faults."""

    name = "fault-swallower"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        try:
            total = sum(x for x in inbox if x is not None)
        except Exception:  # seeded: broad catch hides faults
            total = 0
        ctx.publish(self._digest(total))

    def _digest(self, total):
        try:
            return total % 7
        except:  # noqa: E722  seeded: bare except in a reachable helper
            return 0


class TaxonomyCatcher(SyncAlgorithm):
    """Names the fault taxonomy itself in handlers."""

    name = "taxonomy-catcher"

    def setup(self, ctx):
        ctx.publish(1)

    def step(self, ctx, inbox):
        try:
            ctx.publish(max(x for x in inbox if x is not None))
        except (ValueError, FaultEvent):  # seeded: catches FaultEvent
            ctx.publish(0)
        try:
            ctx.halt(1)
        except BudgetExceededError:  # seeded: catches budget faults
            pass


class CarefulStepper(SyncAlgorithm):
    """Clean control: narrow handler on a non-fault exception."""

    name = "careful-stepper"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        try:
            ctx.publish(int(inbox[0]))
        except (TypeError, IndexError):
            ctx.halt(0)


def driver(graph):
    run_local(graph, FaultSwallower(), Model.DET)
    run_local(graph, TaxonomyCatcher(), Model.DET)
    return run_local(graph, CarefulStepper(), Model.DET)

"""Seeded LM003 violations: node code holding global topology."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local
from repro.graphs.graph import Graph


class TopologyPeeker(SyncAlgorithm):
    """Reads the whole graph smuggled in through globals."""

    name = "topology-peeker"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.publish(farthest_degree(ctx.globals["graph"], 0))


def farthest_degree(graph: Graph, v):  # seeded: Graph parameter
    # seeded: Graph referenced in reachable node code
    assert isinstance(graph, Graph)
    return max(graph.degree(u) for u in range(graph.num_vertices))


def driver(graph):
    return run_local(
        graph,
        TopologyPeeker(),
        Model.DET,
        global_params={"graph": graph},
    )

"""Seeded LM004 violations: cross-node hidden channels."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local

BLACKBOARD = {}
COUNTER = 0


class Gossip(SyncAlgorithm):
    """Vertices coordinate through module state instead of messages."""

    name = "gossip"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        BLACKBOARD["latest"] = max(inbox or [0])  # seeded: shared write
        BLACKBOARD.update(round=len(inbox))  # seeded: shared mutation
        self._note(ctx)
        bump()

    def _note(self, ctx, seen=[]):  # seeded: mutable default
        seen.append(1)
        ctx.publish(len(seen))


def bump():
    global COUNTER  # seeded: global write from node code
    COUNTER += 1


def driver(graph):
    return run_local(graph, Gossip(), Model.DET)

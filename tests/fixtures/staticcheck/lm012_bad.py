"""Seeded LM012 violations: non-serializable values in ctx.state.

Never imported — analyzed as source by tests/test_staticcheck.py.
Each seeded line stores something into ``ctx.state`` that
``pickle.dumps`` rejects, so the first checkpoint ``save()`` of a run
under ``repro.core.checkpoint`` would die with a CheckpointError.
"""

import socket
import threading

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class ResourceHoarder(SyncAlgorithm):
    """Stashes live OS resources in per-node state."""

    name = "resource-hoarder"

    def setup(self, ctx):
        ctx.state["log"] = open("/tmp/node.log", "a")  # seeded: file
        ctx.state["lock"] = threading.Lock()  # seeded: lock
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.state["peer"] = socket.socket()  # seeded: socket
        ctx.halt(0)


class LazyStepper(SyncAlgorithm):
    """Defers work through state-held callables and iterators."""

    name = "lazy-stepper"

    def setup(self, ctx):
        ctx.state["scorer"] = lambda m: hash(m) & 7  # seeded: lambda
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.state["feed"] = (m for m in inbox if m)  # seeded: genexp
        stream = open("/tmp/scratch.txt", "w")
        ctx.state["stream"] = stream  # seeded: tainted local
        ctx.halt(0)


class PlainKeeper(SyncAlgorithm):
    """Clean control: ctx.state holds only plain data."""

    name = "plain-keeper"

    def setup(self, ctx):
        ctx.state["round_seen"] = 0
        ctx.state["history"] = []
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.state["round_seen"] += 1
        ctx.state["history"].append(tuple(inbox))
        ctx.halt(len(ctx.state["history"]))


def driver(graph):
    run_local(graph, ResourceHoarder(), Model.DET)
    run_local(graph, LazyStepper(), Model.DET)
    return run_local(graph, PlainKeeper(), Model.DET)

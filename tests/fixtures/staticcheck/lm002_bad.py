"""Seeded LM002 violation: ctx.id reachable from RandLOCAL."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class PeekingRand(SyncAlgorithm):
    """Claims RandLOCAL but breaks symmetry with the vertex ID."""

    name = "peeking-rand"

    def setup(self, ctx):
        ctx.publish(None)

    def step(self, ctx, inbox):
        ctx.publish(self._bid(ctx))

    def _bid(self, ctx):
        return ctx.id * 2 + 1  # seeded: ctx.id under RandLOCAL


def driver(graph, seed):
    return run_local(graph, PeekingRand(), Model.RAND, seed=seed)

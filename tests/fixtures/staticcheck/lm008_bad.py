"""Seeded LM008 violations: observer callbacks mutating the live ctx
or graph state they are only supposed to watch."""

from repro.obs import RunObserver


class SteeringObserver(RunObserver):
    """Calls lifecycle methods and writes through ctx — steering the
    run instead of observing it."""

    def on_node_step(self, round_index, vertex, ctx):
        # seeded: lifecycle call from an observer
        ctx.halt(vertex)
        # seeded: attribute store through ctx
        ctx.output = round_index

    def on_publish(self, round_index, vertex, value):
        self.seen = value


class StateScribbler(RunObserver):
    """Mutates ctx.state containers and drains the RNG stream."""

    def on_node_step(self, round_index, vertex, ctx):
        # seeded: subscript store through ctx.state
        ctx.state["observed"] = round_index
        # seeded: container mutation rooted at ctx
        ctx.state["log"].append(vertex)
        # seeded: consuming the vertex's private random stream
        return ctx.random.random()


class GraphEditor:
    """Duck-typed observer (no RunObserver base) scribbling on the
    graph handed over in run metadata."""

    def on_run_start(self, meta):
        self.meta = meta

    def on_round_start(self, round_index, active):
        self.active = active

    def on_halt(self, round_index, vertex, output, graph=None):
        # seeded: attribute store through a graph parameter
        graph.labels[vertex] = output


class PoliteWatcher(RunObserver):
    """Clean control: reads everything, touches only self."""

    def __init__(self):
        self.halts = []
        self.pending = {}

    def on_node_step(self, round_index, vertex, ctx):
        self.pending[vertex] = ctx.pending_publish

    def on_halt(self, round_index, vertex, output):
        self.halts.append((round_index, vertex, output))


class BatchScribbler:
    """Duck-typed batch-plane observer writing into the columnar
    RoundBatch payload arrays the vectorized backend hands out."""

    def on_round_batch(self, batch):
        # seeded: element store into an engine-owned payload array
        batch.stepped[0] = -1
        # seeded: container mutation rooted at the batch
        batch.halted_verts.append(0)


class AnnotatedBatchEditor:
    """Batch param recognized by annotation, not by name."""

    def on_round_batch(self, rb: "RoundBatch"):
        # seeded: attribute store through an annotated batch param
        rb.active = 0

    def on_backend_info(self, backend, kernel):
        self.backend = backend


class PoliteBatchWatcher:
    """Clean control: reads batch columns, touches only self."""

    def __init__(self):
        self.rounds = []

    def on_round_batch(self, batch):
        self.rounds.append((batch.round_index, batch.active))

"""Seeded LM001 violations: randomness reachable from DetLOCAL.

Never imported — analyzed as source by tests/test_staticcheck.py.
"""

import random

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class SneakyDet(SyncAlgorithm):
    """Claims DetLOCAL but flips coins two calls deep."""

    name = "sneaky-det"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        self._pick(ctx, inbox)

    def _pick(self, ctx, inbox):
        ctx.publish(ctx.random.getrandbits(8))  # seeded: ctx.random
        return random.random()  # seeded: random module


def driver(graph):
    # Bind through a local variable: the scanner must trace it.
    algorithm = SneakyDet()
    return run_local(graph, algorithm, Model.DET)

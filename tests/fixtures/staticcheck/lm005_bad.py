"""Seeded LM005 violations: nondeterminism sources in DetLOCAL."""

import os
import time

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class FlakyDet(SyncAlgorithm):
    """Deterministic on paper, wall-clock-dependent in practice."""

    name = "flaky-det"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        stamp = time.monotonic()  # seeded: wall clock
        entropy = os.urandom(1)  # seeded: OS entropy
        bag = {msg for msg in inbox if msg}
        for msg in bag:  # seeded: unordered-set iteration
            ctx.publish((msg, stamp, entropy))


def driver(graph):
    return run_local(graph, FlakyDet(), Model.DET)

"""Seeded LM006 violations: publishing ctx.now-derived values."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class Clocky(SyncAlgorithm):
    """Leaks the round counter into its messages."""

    name = "clocky"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        phase = ctx.now % 2
        ctx.publish(("phase", phase))  # seeded: tainted local
        ctx.publish(ctx.now + 1)  # seeded: direct ctx.now


def driver(graph):
    return run_local(graph, Clocky(), Model.DET)

"""A class executed under BOTH models must satisfy both rule sets."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class BothWays(SyncAlgorithm):
    name = "both-ways"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        if ctx.globals.get("det"):
            ctx.publish(ctx.id)  # LM002 under the RAND binding
        else:
            ctx.publish(ctx.random.random())  # LM001 under DET binding


def det_driver(graph):
    return run_local(graph, BothWays(), Model.DET)


def rand_driver(graph, seed):
    return run_local(graph, BothWays(), Model.RAND, seed=seed)

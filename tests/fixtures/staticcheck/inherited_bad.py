"""Violation in an *inherited* entry point: the bound subclass defines
no step of its own, so the analyzer must follow the base chain."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class NoisyBase(SyncAlgorithm):
    name = "noisy-base"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.publish(ctx.random.getrandbits(4))  # seeded: ctx.random


class QuietChild(NoisyBase):
    """Bound under DetLOCAL; inherits the violating step."""

    name = "quiet-child"


def driver(graph):
    return run_local(graph, QuietChild(), Model.DET)

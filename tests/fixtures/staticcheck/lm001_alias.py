"""Aliased-import randomness: the LM001 blind-spot regressions.

``from random import random as r`` hides the module name behind a
bare call; ``import numpy.random as nr`` hides it behind a submodule
alias whose dotted origin does not *start* with 'random'.  Both must
resolve through the import table to a randomness module.

Never imported — analyzed as source by tests/test_staticcheck.py.
"""

import numpy.random as nr
from random import random as r

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class AliasedRandom(SyncAlgorithm):
    name = "aliased-random"

    def setup(self, ctx):
        ctx.publish(r())  # seeded: from-import alias

    def step(self, ctx, inbox):
        ctx.halt(nr.random())  # seeded: submodule alias


def driver(graph):
    run_local(graph, AliasedRandom(), Model.DET)

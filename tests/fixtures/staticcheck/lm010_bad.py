"""Seeded LM010 violations: information radius above the contract.

Never imported — analyzed as source by tests/test_staticcheck_dataflow.py.
"""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local
from repro.lcl import KColoring
from repro.verify import subject_from_algorithm


class SharedScan(SyncAlgorithm):
    """Routes information through an instance attribute — a channel
    the LOCAL model does not have (the algorithm object is shared by
    every vertex)."""

    name = "shared-scan"

    def __init__(self):
        self._rank = 0

    def setup(self, ctx):
        ctx.publish(ctx.id)

    def step(self, ctx, inbox):
        self._rank += 1
        ctx.halt(self._rank)  # seeded: unbounded radius via self._rank


class ZeroRound(SyncAlgorithm):
    """Halts on a bare ID under a symmetry-breaking contract."""

    name = "zero-round"

    def setup(self, ctx):
        ctx.halt(ctx.id % 5)  # seeded: 0-round symmetry breaking


def driver(graph):
    run_local(graph, SharedScan(), Model.DET)
    run_local(graph, ZeroRound(), Model.DET)


def subject():
    return subject_from_algorithm(
        ZeroRound,
        name="zero-round",
        model=Model.DET,
        problem=lambda g: KColoring(5),
    )

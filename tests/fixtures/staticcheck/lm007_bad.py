"""Seeded LM007 violations: node code recomputing per-round topology
the engine already precomputes (adjacency, reverse ports)."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class PortRebuilder(SyncAlgorithm):
    """Rebuilds neighbor structure every round instead of reading the
    precomputed ``ctx.input["reverse_ports"]`` / the inbox."""

    name = "port-rebuilder"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        helper = ctx.globals["topo"]
        # seeded: per-round reverse-port recomputation
        back = [helper.reverse_port(0, p) for p in ctx.ports]
        # seeded: per-round neighbor-list rebuild
        degree_sum = len(helper.neighbors(0))
        ctx.publish(degree_sum + len(back))


def driver(graph, topo):
    return run_local(
        graph,
        PortRebuilder(),
        Model.DET,
        global_params={"topo": topo},
    )

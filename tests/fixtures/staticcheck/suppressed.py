"""Seeded violations covered by ``# repro: ignore`` suppressions —
the analyzer must report none of them (but count them as suppressed)."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class DocumentedClock(SyncAlgorithm):
    """Publishes its peel round as the documented output contract."""

    name = "documented-clock"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.publish(("layer", ctx.now))  # repro: ignore[LM006]
        # repro: ignore[LM006]
        ctx.publish(ctx.now + 1)
        self._spend(ctx)

    def _spend(self, ctx):
        return ctx.random.random()  # repro: ignore


def driver(graph):
    return run_local(graph, DocumentedClock(), Model.DET)

"""Seeded LM011 violations: laundered nondeterminism in DetLOCAL.

Neither class calls a name the LM001/LM005 pattern matchers know —
only the effect system sees the seed and order dependencies.

Never imported — analyzed as source by tests/test_staticcheck_dataflow.py.
"""

import random

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local

#: Module-level RNG: node code never mentions ``random.*`` directly.
_HIDDEN = random.Random(1234)


class LaunderedSeed(SyncAlgorithm):
    name = "laundered-seed"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        ctx.halt(_HIDDEN.getrandbits(8))  # seeded: SEED effect


class OrderLeak(SyncAlgorithm):
    name = "order-leak"

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        bag = set(inbox)
        first = list(bag)[0]  # the ORDER effect originates here...
        ctx.halt(first)  # seeded: ...and is reported at the sink


def driver(graph):
    run_local(graph, LaunderedSeed(), Model.DET)
    run_local(graph, OrderLeak(), Model.DET)

"""Model-conformant fixture: everything here must produce ZERO
diagnostics (the analyzer's false-positive budget)."""

from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model, NodeContext
from repro.core.engine import run_local
from repro.graphs.graph import Graph

#: Module-level constant — *read* from node code, never written.
PALETTE = (0, 1, 2)


def fold(color, other):
    """Pure helper: fine in any model."""
    diff = color ^ other
    return (diff & -diff).bit_length() - 1


class GoodDet(SyncAlgorithm):
    """DetLOCAL: uses ctx.id, schedules with ctx.now, publishes colors."""

    name = "good-det"

    def setup(self, ctx):
        ctx.state["color"] = ctx.id
        ctx.publish(ctx.id)

    def step(self, ctx, inbox):
        # ctx.now used for *scheduling only* — never published.
        if ctx.now < ctx.globals["phases"]:
            taken = {msg for msg in inbox if isinstance(msg, int)}
            # Sorted iteration over a set: deterministic, not flagged.
            for color in sorted(taken):
                if color != ctx.state["color"]:
                    ctx.state["color"] = fold(ctx.state["color"], color)
            ctx.publish(ctx.state["color"])
            return
        # Membership tests on sets are order-free: not flagged.
        free = [c for c in PALETTE if c not in set(inbox)]
        ctx.halt(free[0] if free else ctx.state["color"])


class GoodRand(SyncAlgorithm):
    """RandLOCAL: private coins, no IDs."""

    name = "good-rand"

    def setup(self, ctx: NodeContext):
        ctx.publish(("undecided",))

    def step(self, ctx: NodeContext, inbox):
        bid = ctx.random.getrandbits(32)
        if all(msg != ("in",) for msg in inbox):
            ctx.publish(("bid", bid))
        else:
            ctx.halt(bid % 2)


def det_driver(graph: Graph, ids):
    """Driver code legitimately holds the Graph and assigns IDs —
    it is not reachable from any entry point."""
    return run_local(
        graph,
        GoodDet(),
        Model.DET,
        ids=ids,
        global_params={"phases": graph.max_degree},
    )


def rand_driver(graph: Graph, seed):
    return run_local(graph, GoodRand(), Model.RAND, seed=seed)

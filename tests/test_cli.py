"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_help_when_no_command(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "separation" in out

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["separation", "--delta", "5"])
        assert args.delta == 5
        args = parser.parse_args(["mis", "--n", "50"])
        assert args.n == 50

    def test_mis_command(self, capsys):
        assert main(["mis", "--n", "60", "--delta", "3"]) == 0
        out = capsys.readouterr().out
        assert "Luby" in out

    def test_baseline_command(self, capsys):
        assert main(["baseline", "--n", "80", "--delta", "4"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out

    def test_coloring_command(self, capsys):
        assert (
            main(["coloring", "--n", "400", "--delta", "12", "--seed", "3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "rounds" in out

    def test_report_command(self, capsys, tmp_path):
        from repro.analysis.experiments import ExperimentRecord

        record = ExperimentRecord("E1", "demo")
        record.check("ok", True)
        (tmp_path / "e1.txt").write_text(record.render())
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_separation_command_small(self, capsys):
        assert (
            main(
                [
                    "separation",
                    "--delta",
                    "6",
                    "--sizes",
                    "50,500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "det" in out and "rand" in out


class TestFaultsCli:
    def test_faults_command_runs_the_experiment(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "--n", "80",
                    "--delta", "9",
                    "--rates", "0,0.05",
                    "--trials", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "E6F" in out
        assert "PASS" in out

    def test_faults_rejects_malformed_rates(self, capsys):
        assert main(["faults", "--rates", "0,banana"]) == 2
        err = capsys.readouterr().err
        assert "comma-separated floats" in err

    def test_faults_rejects_rates_without_control(self, capsys):
        assert main(["faults", "--rates", "0.01,0.05"]) == 2
        err = capsys.readouterr().err
        assert "control" in err

    def test_repro_errors_render_structured_context(self, capsys, monkeypatch):
        import repro.faults.experiment as fault_experiment
        from repro.core.errors import AlgorithmFailure

        def boom(**kwargs):
            raise AlgorithmFailure("vertex misbehaved", node=17, round=4)

        monkeypatch.setattr(
            fault_experiment, "failure_rate_experiment", boom
        )
        assert main(["faults", "--n", "80"]) == 1
        err = capsys.readouterr().err
        assert "repro faults: AlgorithmFailure: vertex misbehaved" in err
        assert "node: 17" in err
        assert "round: 4" in err

    def test_skipped_cells_warn_on_stderr(self, capsys):
        from repro.analysis import CellOutcome, ExperimentRecord, Series
        from repro.cli import _warn_skipped_cells

        series = Series("demo")
        series.add(1.0, [0.5])
        series.cell_outcomes = [
            CellOutcome(1.0, 0, "ok", 0.5, 1, 0),
            CellOutcome(1.0, 1, "crashed", None, 1, 1, "worker died"),
        ]
        record = ExperimentRecord("T1", "warnings")
        record.add_series(series)
        _warn_skipped_cells(record)
        err = capsys.readouterr().err
        assert "1 cell(s) skipped" in err
        assert "[crashed] worker died" in err


class TestRunCli:
    def test_plain_run_prints_summary(self, capsys):
        assert main(["run", "--n", "120", "--delta", "9", "--seed", "2"]) == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["workload"] == "coloring"
        assert summary["n"] == 120 and summary["rounds"] >= 1

    def test_checkpointed_run_leaves_snapshots(self, capsys, tmp_path):
        import os

        code = main(
            [
                "run", "--workload", "mis", "--n", "80", "--delta", "4",
                "--checkpoint-dir", str(tmp_path / "ck"),
                "--checkpoint-every", "2",
                "--trace", str(tmp_path / "t.jsonl"),
            ]
        )
        assert code == 0
        capsys.readouterr()
        names = os.listdir(tmp_path / "ck")
        assert any(n.endswith(".done") for n in names)
        assert (tmp_path / "t.jsonl").stat().st_size > 0

    def test_resume_replays_to_identical_result(self, capsys, tmp_path):
        argv = [
            "run", "--n", "100", "--delta", "9", "--seed", "4",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_supervised_run_writes_audit(self, capsys, tmp_path):
        import json

        code = main(
            [
                "run", "--workload", "mis", "--n", "80", "--delta", "4",
                "--checkpoint-dir", str(tmp_path / "ck"),
                "--retries", "1", "--watchdog", "30",
                "--audit", str(tmp_path / "audit.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attempts" in out
        audit = json.loads((tmp_path / "audit.json").read_text())
        assert audit["ok"] and audit["attempts"] == 1
        assert [e["kind"] for e in audit["events"]][-1] == "done"

    def test_supervision_flags_need_checkpoint_dir(self, capsys):
        assert main(["run", "--retries", "2"]) == 2
        assert "need --checkpoint-dir" in capsys.readouterr().err

    def test_resume_needs_checkpoint_dir(self, capsys):
        assert main(["run", "--resume"]) == 2
        assert "--resume needs" in capsys.readouterr().err

    def test_rejects_degenerate_sizes(self, capsys):
        assert main(["run", "--n", "1"]) == 2
        assert "need n >= 2" in capsys.readouterr().err

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_help_when_no_command(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().out
        assert "separation" in out

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["separation", "--delta", "5"])
        assert args.delta == 5
        args = parser.parse_args(["mis", "--n", "50"])
        assert args.n == 50

    def test_mis_command(self, capsys):
        assert main(["mis", "--n", "60", "--delta", "3"]) == 0
        out = capsys.readouterr().out
        assert "Luby" in out

    def test_baseline_command(self, capsys):
        assert main(["baseline", "--n", "80", "--delta", "4"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out

    def test_coloring_command(self, capsys):
        assert (
            main(["coloring", "--n", "400", "--delta", "12", "--seed", "3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "rounds" in out

    def test_report_command(self, capsys, tmp_path):
        from repro.analysis.experiments import ExperimentRecord

        record = ExperimentRecord("E1", "demo")
        record.check("ok", True)
        (tmp_path / "e1.txt").write_text(record.render())
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_separation_command_small(self, capsys):
        assert (
            main(
                [
                    "separation",
                    "--delta",
                    "6",
                    "--sizes",
                    "50,500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "det" in out and "rand" in out

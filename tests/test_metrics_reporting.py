"""Tests for graph metrics and the experiment-report aggregator."""

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.analysis.reporting import (
    collect,
    parse_record,
    render_summary,
)
from repro.graphs.metrics import (
    arboricity_bounds,
    ball_growth,
    degeneracy,
    degree_histogram,
    peeling_profile,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_regular_graph,
    random_tree_bounded_degree,
    star_graph,
)


class TestMetrics:
    def test_degree_histogram(self):
        g = star_graph(4)
        assert degree_histogram(g) == {4: 1, 1: 4}

    def test_degeneracy_of_tree_is_one(self, rng):
        g = random_tree_bounded_degree(100, 6, rng)
        d, order = degeneracy(g)
        assert d == 1
        assert sorted(order) == list(range(100))

    def test_degeneracy_order_property(self, rng):
        g = random_regular_graph(60, 4, rng)
        d, order = degeneracy(g)
        position = {v: i for i, v in enumerate(order)}
        for v in g.vertices():
            later = sum(
                1 for u in g.neighbors(v) if position[u] > position[v]
            )
            assert later <= d

    def test_degeneracy_of_clique(self):
        assert degeneracy(complete_graph(6))[0] == 5

    def test_degeneracy_of_cycle(self):
        assert degeneracy(cycle_graph(9))[0] == 2

    def test_arboricity_bounds_tree(self, rng):
        g = random_tree_bounded_degree(80, 5, rng)
        lower, upper = arboricity_bounds(g)
        assert lower == 1
        assert upper == 1

    def test_arboricity_bounds_sandwich(self, rng):
        g = random_regular_graph(50, 6, rng)
        lower, upper = arboricity_bounds(g)
        assert 1 <= lower <= upper

    def test_peeling_profile_partitions(self, rng):
        g = random_tree_bounded_degree(120, 5, rng)
        sizes = peeling_profile(g, threshold=2)
        assert sum(sizes) == 120

    def test_peeling_stalls_below_degeneracy(self):
        g = complete_graph(5)
        with pytest.raises(ValueError):
            peeling_profile(g, threshold=1)

    def test_ball_growth_path(self):
        g = path_graph(101)
        growth = ball_growth(g, 3)
        assert growth[0] == 1
        assert growth[1] <= 3
        assert all(a <= b for a, b in zip(growth, growth[1:]))


class TestReporting:
    def _record_text(self, experiment_id="E0", ok=True):
        record = ExperimentRecord(experiment_id, "demo experiment")
        record.check("first", True)
        record.check("second", ok)
        record.note("a note")
        return record.render()

    def test_parse_round_trip(self):
        summary = parse_record(self._record_text())
        assert summary.experiment_id == "E0"
        assert summary.passed
        assert summary.notes == ["a note"]

    def test_parse_detects_failure(self):
        summary = parse_record(self._record_text(ok=False))
        assert not summary.passed
        assert summary.checks["second"] is False

    def test_parse_non_record(self):
        assert parse_record("hello world") is None

    def test_collect_and_render(self, tmp_path):
        (tmp_path / "e1.txt").write_text(self._record_text("E1"))
        (tmp_path / "e2.txt").write_text(
            self._record_text("E2", ok=False)
        )
        (tmp_path / "junk.txt").write_text("not a record")
        summaries = collect(tmp_path)
        assert [s.experiment_id for s in summaries] == ["E1", "E2"]
        table = render_summary(summaries)
        assert "PASS" in table and "FAIL" in table

    def test_main_exit_codes(self, tmp_path, capsys):
        from repro.analysis.reporting import main

        (tmp_path / "e1.txt").write_text(self._record_text("E1"))
        assert main([str(tmp_path)]) == 0
        (tmp_path / "e2.txt").write_text(
            self._record_text("E2", ok=False)
        )
        assert main([str(tmp_path)]) == 1
        assert main([str(tmp_path / "missing")]) == 2

"""Tests for the Barenboim–Elkin q-coloring of forests (Theorem 9)."""

import pytest

from repro.algorithms.tree_coloring import (
    barenboim_elkin_coloring,
    h_partition,
    same_layer_ports,
    up_ports_from_layers,
)
from repro.analysis import log_base
from repro.core.ids import shuffled_ids
from repro.graphs.generators import (
    caterpillar_graph,
    complete_dary_tree,
    complete_tree_with_max_degree,
    path_graph,
    random_forest,
    random_tree_bounded_degree,
    spider_graph,
)
from repro.lcl import KColoring


class TestHPartition:
    def test_path_single_layer(self):
        g = path_graph(20)
        layers = h_partition(g, threshold=2)
        assert all(layer == 0 for layer in layers)

    def test_complete_tree_peeling_waves(self):
        g = complete_dary_tree(3, 6)  # max degree 4
        layers = h_partition(g, threshold=3)
        n = g.num_vertices
        num_leaves = 3 ** 6
        # Leaves (degree 1) and the root (degree 3 <= threshold) peel
        # immediately; two peeling waves then move toward the middle,
        # so the number of layers is about half the depth.
        assert layers[0] == 0
        assert all(layers[v] == 0 for v in range(n - num_leaves, n))
        assert 2 <= max(layers) <= 6

    def test_layer_count_logarithmic(self, rng):
        g = random_tree_bounded_degree(3000, 8, rng)
        layers = h_partition(g, threshold=3)
        assert max(layers) <= 4 * log_base(3000, 2)

    def test_up_set_bounded_by_threshold(self, rng):
        g = random_tree_bounded_degree(400, 8, rng)
        threshold = 3
        layers = h_partition(g, threshold)
        ids = list(range(400))
        ups = up_ports_from_layers(g, layers, ids)
        for v in g.vertices():
            assert len(ups[v]) <= threshold

    def test_every_edge_oriented_once(self, rng):
        g = random_tree_bounded_degree(300, 6, rng)
        layers = h_partition(g, 3)
        ids = list(range(300))
        ups = up_ports_from_layers(g, layers, ids)
        oriented = set()
        for v in g.vertices():
            for p in ups[v]:
                u = g.endpoint(v, p)
                key = (min(u, v), max(u, v))
                assert key not in oriented
                oriented.add(key)
        assert len(oriented) == g.num_edges

    def test_same_layer_ports_symmetric(self, rng):
        g = random_tree_bounded_degree(200, 5, rng)
        layers = h_partition(g, 2)
        same = same_layer_ports(g, layers)
        for v in g.vertices():
            for p in same[v]:
                u = g.endpoint(v, p)
                assert layers[u] == layers[v]
                assert g.reverse_port(v, p) in same[u]


class TestBarenboimElkin:
    @pytest.mark.parametrize("q", [3, 4, 6])
    def test_random_trees(self, q, rng):
        g = random_tree_bounded_degree(500, 7, rng)
        report = barenboim_elkin_coloring(g, q)
        assert KColoring(q).is_solution(g, report.labeling)

    def test_q_equals_delta_on_complete_tree(self):
        g = complete_tree_with_max_degree(6, 400)
        report = barenboim_elkin_coloring(g, 6)
        assert KColoring(6).is_solution(g, report.labeling)

    def test_three_coloring_path(self):
        g = path_graph(300)
        report = barenboim_elkin_coloring(g, 3)
        assert KColoring(3).is_solution(g, report.labeling)

    def test_spider_and_caterpillar(self):
        for g in (spider_graph(9, 15), caterpillar_graph(30, 3)):
            report = barenboim_elkin_coloring(g, 3)
            assert KColoring(3).is_solution(g, report.labeling)

    def test_forest_input(self, rng):
        g = random_forest(300, 5, 6, rng)
        report = barenboim_elkin_coloring(g, 4)
        assert KColoring(4).is_solution(g, report.labeling)

    def test_q_too_small_rejected(self, small_tree):
        with pytest.raises(ValueError):
            barenboim_elkin_coloring(small_tree, 2)

    def test_independent_of_delta(self, rng):
        # q = 3 works even when Δ is large (Theorem 9 is Δ-free).
        g = spider_graph(40, 8)
        report = barenboim_elkin_coloring(g, 3)
        assert KColoring(3).is_solution(g, report.labeling)

    def test_shuffled_ids(self, rng):
        g = random_tree_bounded_degree(300, 6, rng)
        ids = shuffled_ids(300, rng)
        report = barenboim_elkin_coloring(g, 4, ids=ids)
        assert KColoring(4).is_solution(g, report.labeling)

    def test_round_growth_is_logarithmic(self):
        rounds = []
        sizes = (50, 500, 5000)
        for n in sizes:
            g = complete_tree_with_max_degree(4, n)
            report = barenboim_elkin_coloring(g, 4)
            rounds.append(report.rounds)
        # Doubling the exponent of n should not blow up the rounds more
        # than proportionally to log n.
        assert rounds[2] - rounds[0] >= 2  # it does grow ...
        assert rounds[2] <= 4 * rounds[0]  # ... but logarithmically

    def test_phase_breakdown_complete(self, medium_tree):
        report = barenboim_elkin_coloring(medium_tree, 4)
        expected = {
            "peeling",
            "layer-exchange",
            "oriented-linial",
            "within-layer-reduction",
            "layer-sweep",
        }
        assert set(report.breakdown) == expected
        assert report.rounds == sum(report.breakdown.values())

"""Shared fixtures for the test suite."""

import random

import pytest

from repro.graphs.generators import (
    complete_dary_tree,
    cycle_graph,
    path_graph,
    random_regular_graph,
    random_tree_bounded_degree,
)


@pytest.fixture
def rng():
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_tree(rng):
    """A random degree-<=5 tree on 60 vertices."""
    return random_tree_bounded_degree(60, 5, rng)


@pytest.fixture
def medium_tree(rng):
    """A random degree-<=8 tree on 400 vertices."""
    return random_tree_bounded_degree(400, 8, rng)


@pytest.fixture
def ternary_tree():
    """The complete 3-ary tree of depth 4 (max degree 4)."""
    return complete_dary_tree(3, 4)


@pytest.fixture
def ring():
    """A 48-cycle."""
    return cycle_graph(48)


@pytest.fixture
def path():
    """A 37-vertex path."""
    return path_graph(37)


@pytest.fixture
def cubic_graph(rng):
    """A random 3-regular graph on 64 vertices."""
    return random_regular_graph(64, 3, rng)

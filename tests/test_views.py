"""Tests for view collection and the indistinguishability machinery."""

import random

from repro.core import (
    collect_view,
    tree_canonical_form,
    views_equivalent_as_trees,
    views_identical,
)
from repro.graphs.generators import (
    complete_dary_tree,
    cycle_graph,
    high_girth_regular_graph,
    path_graph,
)
from repro.lowerbounds import (
    all_views_are_trees,
    far_perturbation,
    matching_view_pairs,
)


class TestCollectView:
    def test_radius_zero(self):
        g = path_graph(3)
        view = collect_view(g, 1, 0)
        assert view.num_vertices == 1
        assert view.adjacency == ((-1, -1),)

    def test_radius_one_star(self):
        g = path_graph(3)
        view = collect_view(g, 1, 1)
        assert view.num_vertices == 3
        # Center (index 0) sees both neighbors.
        assert set(view.adjacency[0]) == {1, 2}

    def test_labels_travel(self):
        g = path_graph(3)
        view = collect_view(g, 1, 1, labels=["a", "b", "c"])
        assert view.labels[0] == "b"
        assert set(view.labels[1:]) == {"a", "c"}

    def test_horizon_edges_masked(self):
        # In a 4-cycle, a radius-1 view of any vertex must NOT contain
        # the edge joining its two distance-1 neighbors' far side.
        g = cycle_graph(4)
        view = collect_view(g, 0, 1)
        # Vertices 1 and 3 are at the horizon; their mutual edges to
        # vertex 2 (distance 2) are invisible.
        assert view.num_vertices == 3
        for row in view.adjacency[1:]:
            assert row.count(-1) >= 1

    def test_view_equality_same_position(self):
        # Port-numbered views are position-sensitive on generator-made
        # cycles (ports differ), but the AHU tree form is not.
        g = cycle_graph(12)
        a = collect_view(g, 0, 3)
        b = collect_view(g, 5, 3)
        assert views_equivalent_as_trees(a, b)
        # Vertices whose balls avoid the wrap-around vertex 0 (whose
        # ports are flipped by the generator) have identical
        # port-numbered views.
        c = collect_view(g, 5, 3)
        d = collect_view(g, 8, 3)
        assert c == d
        assert hash(c) == hash(d)

    def test_view_distinguishes_degree(self):
        g = path_graph(5)
        end = collect_view(g, 0, 1)
        middle = collect_view(g, 2, 1)
        assert end != middle

    def test_is_tree_view(self):
        tree = complete_dary_tree(2, 3)
        assert collect_view(tree, 0, 2).is_tree_view()
        # Girth 5 > 2*2 means a radius-2 view is still a tree (the
        # closing edge joins two horizon vertices and is invisible)...
        assert collect_view(cycle_graph(5), 0, 2).is_tree_view()
        # ...but in a 4-cycle the closing edges are visible.
        assert not collect_view(cycle_graph(4), 0, 2).is_tree_view()

    def test_views_identical_cross_graph(self):
        ring_a = cycle_graph(20)
        ring_b = cycle_graph(30)
        # Interior vertices (balls avoiding the wrap vertex) share the
        # exact port structure across different ring sizes.
        assert views_identical(ring_a, 10, ring_b, 17, 4)
        a = collect_view(ring_a, 0, 4)
        b = collect_view(ring_b, 17, 4)
        assert views_equivalent_as_trees(a, b)


class TestIndistinguishability:
    def test_high_girth_is_locally_tree(self):
        rng = random.Random(1)
        g = high_girth_regular_graph(300, 3, 8, rng)
        assert all_views_are_trees(g, 3)
        assert not all_views_are_trees(g, 20)

    def test_matching_view_pairs_ring(self):
        a = cycle_graph(10)
        b = cycle_graph(14)
        pairs = matching_view_pairs(a, b, 2, up_to_ports=True)
        # Every vertex of the 10-ring matches every vertex of the
        # 14-ring at radius 2 (all views are identical path segments
        # once port numbering is factored out).
        assert len(pairs) == 10 * 14

    def test_tree_vs_high_girth_views_match(self):
        rng = random.Random(3)
        g = high_girth_regular_graph(600, 3, 8, rng)
        radius = 3
        # The radius-3 view of any vertex of g is the 3-regular tree
        # truncated at depth 3; all vertices look identical up to the
        # (arbitrary) port numbering.
        forms = {
            tree_canonical_form(collect_view(g, v, radius))
            for v in range(20)
        }
        assert len(forms) == 1

    def test_far_perturbation_preserves_ball(self):
        rng = random.Random(5)
        g = cycle_graph(40)
        sibling = far_perturbation(g, 0, 4, rng)
        assert sibling is not None
        assert sibling.num_edges == g.num_edges
        # The ball of radius 4 around 0 is untouched.
        for v in g.ball(0, 4):
            assert list(g.neighbors(v)) == list(sibling.neighbors(v))
        # But the graphs differ somewhere.
        assert set(g.edges()) != set(sibling.edges())

    def test_far_perturbation_none_when_no_far_edges(self):
        rng = random.Random(5)
        g = path_graph(5)
        assert far_perturbation(g, 2, 3, rng) is None

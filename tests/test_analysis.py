"""Tests for the analysis utilities: math helpers, fitting, sweeps,
tables."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ExperimentRecord,
    Series,
    best_shape,
    ceil_log2,
    classify_growth,
    growth_exponent_ratio,
    log_base,
    log_delta,
    log_log,
    log_star,
    render_kv,
    render_table,
    run_sweep,
    separation_factor,
)
from repro.core import AlgorithmFailure


class TestMathHelpers:
    def test_log_star_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2 ** 65536 if False else 10 ** 80) == 5

    def test_log_base_clamps(self):
        assert log_base(8, 2) == pytest.approx(3)
        assert log_base(8, 1) == pytest.approx(3)  # clamped to 2
        assert log_base(0.5, 2) == 0.0

    def test_log_delta(self):
        assert log_delta(81, 3) == pytest.approx(4)

    def test_log_log(self):
        assert log_log(2) == 0.0
        assert log_log(2 ** 16) == pytest.approx(4)

    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(1000) == 10


class TestFitting:
    def _series(self, fn, xs=(2 ** 6, 2 ** 8, 2 ** 10, 2 ** 13, 2 ** 16)):
        return list(xs), [fn(x) for x in xs]

    def test_identifies_log(self):
        xs, ys = self._series(lambda n: 3 * math.log2(n) + 5)
        assert best_shape(xs, ys) == "log"

    def test_identifies_loglog(self):
        xs, ys = self._series(lambda n: 4 * math.log2(math.log2(n)) + 2)
        assert best_shape(xs, ys) == "loglog"

    def test_identifies_constant(self):
        xs, ys = self._series(lambda n: 7.0)
        fits = classify_growth(xs, ys)
        assert fits[0].rmse == pytest.approx(0.0, abs=1e-9)

    def test_identifies_linear(self):
        xs, ys = self._series(lambda n: 0.5 * n)
        assert best_shape(xs, ys) == "linear"

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            classify_growth([1, 2], [1, 2])

    def test_growth_exponent_ratio(self):
        xs, ys = self._series(lambda n: 2 * math.log2(n))
        assert growth_exponent_ratio(xs, ys) == pytest.approx(2.0)

    def test_separation_factor(self):
        slow = [10, 20, 40]  # 4x growth
        fast = [10, 11, 12]  # 1.2x growth
        assert separation_factor(slow, fast) > 3

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.5, 10.0), st.floats(0.0, 50.0))
    def test_log_fit_recovers_parameters(self, a, b):
        xs = [2 ** 6, 2 ** 9, 2 ** 12, 2 ** 15]
        ys = [a * math.log2(x) + b for x in xs]
        fits = classify_growth(xs, ys, shapes=("log",))
        assert fits[0].scale == pytest.approx(a, rel=1e-6)
        assert fits[0].offset == pytest.approx(b, abs=1e-6)


class TestSweep:
    def test_run_sweep_aggregates(self):
        series = run_sweep(
            "demo", [1, 2, 3], lambda x, seed: x * 10 + seed, seeds=(0, 1)
        )
        assert series.xs == [1, 2, 3]
        assert series.points[0].values == [10.0, 11.0]
        assert series.points[0].mean == 10.5
        assert series.points[2].minimum == 30.0

    def test_skip_failures(self):
        def measure(x, seed):
            if seed == 0:
                raise AlgorithmFailure("declared failure")
            return x

        series = run_sweep(
            "flaky", [5], measure, seeds=(0, 1), skip_failures=True
        )
        assert series.points[0].values == [5.0]

    def test_skip_failures_only_swallows_declared_failures(self):
        """A genuine bug (TypeError, ModelViolationError, ...) must
        surface even in a skip_failures sweep."""

        def measure(x, seed):
            raise TypeError("genuine bug")

        with pytest.raises(TypeError):
            run_sweep(
                "buggy", [1], measure, seeds=(0,), skip_failures=True
            )

    def test_declared_failure_raises_without_skip(self):
        def measure(x, seed):
            raise AlgorithmFailure("declared failure")

        with pytest.raises(AlgorithmFailure):
            run_sweep("dead", [1], measure, seeds=(0,))

    def test_all_failures_raise(self):
        def measure(x, seed):
            raise AlgorithmFailure("boom")

        with pytest.raises(Exception):
            run_sweep("dead", [1], measure, seeds=(0,), skip_failures=True)

    def test_workers_bit_identical_to_serial(self):
        """The determinism contract: a 4-worker sweep returns the same
        Series (xs, per-point value lists, order) as the serial run."""

        def measure(x, seed):
            rng = random.Random(int(x) * 1000003 + seed)
            return x * 1000 + seed + rng.random()

        serial = run_sweep("s", [1, 2, 3], measure, seeds=(0, 1, 2))
        parallel = run_sweep(
            "s", [1, 2, 3], measure, seeds=(0, 1, 2), workers=4
        )
        assert serial.xs == parallel.xs
        for a, b in zip(serial.points, parallel.points):
            assert a.values == b.values

    def test_workers_skip_failures(self):
        def measure(x, seed):
            if seed == 1:
                raise AlgorithmFailure("declared failure")
            return x + seed

        serial = run_sweep(
            "f", [7, 8], measure, seeds=(0, 1, 2), skip_failures=True
        )
        parallel = run_sweep(
            "f",
            [7, 8],
            measure,
            seeds=(0, 1, 2),
            skip_failures=True,
            workers=3,
        )
        assert [p.values for p in serial.points] == [
            [7.0, 9.0],
            [8.0, 10.0],
        ]
        assert [p.values for p in parallel.points] == [
            p.values for p in serial.points
        ]

    def test_workers_propagate_genuine_bugs(self):
        def measure(x, seed):
            raise ValueError("genuine bug in a worker")

        with pytest.raises(ValueError):
            run_sweep(
                "b", [1, 2], measure, seeds=(0, 1), workers=2,
                skip_failures=True,
            )

    def test_series_empty_sample_rejected(self):
        series = Series("s")
        with pytest.raises(ValueError):
            series.add(1, [])


class TestRendering:
    def test_render_table_aligned(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_kv(self):
        text = render_kv("title", [["k", 1]])
        assert text.startswith("title")

    def test_experiment_record_render(self):
        record = ExperimentRecord("E0", "demo experiment")
        series = Series("s")
        series.add(10, [1.0, 2.0])
        record.add_series(series)
        record.check("verified", True)
        record.note("hello")
        text = record.render()
        assert "E0" in text
        assert "PASS" in text
        assert "hello" in text
        assert record.all_checks_pass

    def test_experiment_record_fail(self):
        record = ExperimentRecord("E0", "demo")
        record.check("broken", False)
        assert not record.all_checks_pass
        assert "FAIL" in record.render()

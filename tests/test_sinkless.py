"""Tests for sinkless orientation algorithms."""

import pytest

from repro.algorithms.sinkless import (
    canonical_sinkless_orientation,
    deterministic_sinkless_orientation,
    random_sinkless_orientation,
)
from repro.core.errors import AlgorithmFailure
from repro.graphs import Graph, GraphError
from repro.graphs.generators import (
    cycle_graph,
    high_girth_regular_graph,
    hypercube_graph,
    path_graph,
    random_regular_graph,
)
from repro.lcl import SinklessOrientation, count_sinks

PROBLEM = SinklessOrientation()


class TestCanonicalRule:
    def test_cycle(self):
        g = cycle_graph(5)
        orientation = canonical_sinkless_orientation(5, list(g.edges()))
        out = [0] * 5
        for tail, _head in orientation.values():
            out[tail] += 1
        assert all(d >= 1 for d in out)

    def test_cycle_with_tail(self):
        # Triangle 0-1-2 with a path 2-3-4 hanging off.
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        orientation = canonical_sinkless_orientation(5, edges)
        out = [0] * 5
        for tail, _head in orientation.values():
            out[tail] += 1
        assert all(d >= 1 for d in out)
        # The hanging path must point toward the triangle.
        assert orientation[(3, 4)] == (4, 3)
        assert orientation[(2, 3)] == (3, 2)

    def test_forest_rejected(self):
        with pytest.raises(GraphError):
            canonical_sinkless_orientation(3, [(0, 1), (1, 2)])

    def test_mixed_components_rejected(self):
        edges = [(0, 1), (1, 2), (0, 2), (3, 4)]
        with pytest.raises(GraphError):
            canonical_sinkless_orientation(5, edges)

    def test_isolated_vertices_fine(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        orientation = canonical_sinkless_orientation(5, edges)
        assert len(orientation) == 3

    @pytest.mark.parametrize("degree", [3, 4, 6])
    def test_regular_graphs(self, degree, rng):
        g = random_regular_graph(60, degree, rng)
        orientation = canonical_sinkless_orientation(
            g.num_vertices, list(g.edges())
        )
        out = [0] * g.num_vertices
        for tail, _head in orientation.values():
            out[tail] += 1
        assert all(d >= 1 for d in out)
        assert len(orientation) == g.num_edges


class TestRandomized:
    @pytest.mark.parametrize("degree", [3, 5])
    def test_valid_orientation(self, degree, rng):
        g = random_regular_graph(200, degree, rng)
        report, stabilized = random_sinkless_orientation(g, seed=5)
        assert PROBLEM.is_solution(g, report.labeling)
        assert count_sinks(g, report.labeling) == 0
        assert 1 <= stabilized <= report.rounds

    def test_hypercube(self):
        g = hypercube_graph(4)
        report, _ = random_sinkless_orientation(g, seed=1)
        assert PROBLEM.is_solution(g, report.labeling)

    def test_budget_failure_raised(self, rng):
        # Budget 1 leaves no fixing rounds; some vertex is almost
        # surely a sink on a 3-regular graph (prob 1/8 each).
        g = random_regular_graph(200, 3, rng)
        with pytest.raises(AlgorithmFailure):
            random_sinkless_orientation(g, seed=2, budget=1)

    def test_stabilization_grows_slowly(self, rng):
        stabilization = []
        for n in (64, 512, 4096):
            g = random_regular_graph(n, 3, rng)
            _, stab = random_sinkless_orientation(g, seed=7)
            stabilization.append(stab)
        assert stabilization[-1] <= stabilization[0] + 16


class TestDeterministic:
    def test_valid_on_high_girth(self, rng):
        g = high_girth_regular_graph(128, 3, 7, rng)
        report = deterministic_sinkless_orientation(g)
        assert PROBLEM.is_solution(g, report.labeling)

    def test_rounds_are_diameter_plus_two(self, rng):
        # diameter+1 collection rounds plus the neighbor-ID exchange.
        g = random_regular_graph(64, 3, rng)
        report = deterministic_sinkless_orientation(g)
        assert report.rounds == g.diameter() + 2

    def test_consistent_between_endpoints(self, rng):
        g = random_regular_graph(48, 4, rng)
        report = deterministic_sinkless_orientation(g)
        for v in g.vertices():
            for p in range(g.degree(v)):
                u = g.endpoint(v, p)
                q = g.reverse_port(v, p)
                assert report.labeling[v][p] != report.labeling[u][q]

    def test_custom_ids(self, rng):
        g = random_regular_graph(32, 3, rng)
        ids = [100 + v * 7 for v in range(32)]
        report = deterministic_sinkless_orientation(g, ids=ids)
        assert PROBLEM.is_solution(g, report.labeling)

"""Order-invariance (Naor–Stockmeyer angle).

The transform unit tests keep exercising
:func:`repro.transforms.order_preserving_remap` and the two control
algorithms directly; the invariance *checks* themselves now run through
the :class:`repro.verify.OrderInvariance` relation — the one
implementation the verification sweep, the CLI, and these tests share
(the bespoke per-test checker loops are gone).
"""

from repro.algorithms import LinialColoring
from repro.core import Model, run_local
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_regular_graph,
)
from repro.transforms import (
    LocalMaximaFragment,
    RankWithinBall,
    order_preserving_remap,
)
from repro.verify import (
    OrderInvariance,
    find_counterexample,
    make_instance,
    subject_from_algorithm,
)


class TestRemap:
    def test_preserves_order(self, rng):
        ids = [5, 2, 9, 0, 7]
        remapped = order_preserving_remap(ids, rng)
        for i in range(len(ids)):
            for j in range(len(ids)):
                assert (ids[i] < ids[j]) == (remapped[i] < remapped[j])

    def test_changes_values(self, rng):
        ids = list(range(30))
        remapped = order_preserving_remap(ids, rng)
        assert remapped != ids

    def test_remap_ids_distinct(self, rng):
        ids = [3, 1, 4, 1 + 5, 9, 2 + 6, 5]
        remapped = order_preserving_remap(ids, rng)
        assert len(set(remapped)) == len(set(ids))


def _subject(make_algorithm, name, order_invariant=True):
    return subject_from_algorithm(
        make_algorithm,
        name=name,
        model=Model.DET,
        order_invariant=order_invariant,
        max_rounds=50,
    )


def _regular(degree):
    def make(n, rng):
        n = max(n, degree + 2)
        if (n * degree) % 2:
            n += 1
        return random_regular_graph(n, degree, rng)

    return make


class TestOrderInvarianceRelation:
    relation = OrderInvariance()

    def test_local_maxima_is_invariant(self):
        subject = _subject(LocalMaximaFragment, "local-maxima")
        assert self.relation.applies_to(subject)
        assert (
            find_counterexample(
                subject,
                self.relation,
                _regular(3),
                5,
                sizes=[50],
                seeds=[0, 1, 2],
            )
            is None
        )

    def test_rank_within_ball_is_invariant(self):
        subject = _subject(RankWithinBall, "rank-within-ball")
        assert (
            find_counterexample(
                subject,
                self.relation,
                lambda n, rng: cycle_graph(max(3, n)),
                3,
                sizes=[40],
                seeds=[0, 1, 2],
            )
            is None
        )

    def test_linial_is_not_invariant(self):
        """Linial's algorithm reads actual ID bits (polynomial
        encodings) — declaring it order-invariant must produce a
        shrunk counterexample."""
        subject = _subject(LinialColoring, "linial", order_invariant=True)
        found = find_counterexample(
            subject,
            self.relation,
            _regular(4),
            6,
            sizes=[60],
            seeds=[0],
        )
        assert found is not None
        violation, original_n = found
        assert violation.relation == "order-invariance"
        assert violation.instance["n"] <= original_n

    def test_relation_skips_undeclared_subjects(self):
        # Linial, honestly declared: the relation does not apply, so
        # the sweep never charges it with a false violation.
        subject = _subject(LinialColoring, "linial", order_invariant=False)
        assert not self.relation.applies_to(subject)

    def test_relation_check_on_a_path_instance(self):
        subject = _subject(LocalMaximaFragment, "local-maxima")
        instance = make_instance(
            lambda n, rng: path_graph(max(4, n)), 20, 5
        )
        assert self.relation.check(subject, instance) is None


class TestControlAlgorithms:
    def test_local_maxima_output_is_independent_set(self, rng):
        g = random_regular_graph(80, 4, rng)
        result = run_local(g, LocalMaximaFragment(), Model.DET)
        chosen = {v for v, out in enumerate(result.outputs) if out == 1}
        assert chosen  # at least the global maximum joins
        for v in chosen:
            assert not any(u in chosen for u in g.neighbors(v))

    def test_rank_is_defective_coloring(self, rng):
        g = random_regular_graph(60, 5, rng)
        result = run_local(g, RankWithinBall(), Model.DET)
        assert all(0 <= out <= 5 for out in result.outputs)

    def test_both_run_in_one_round(self, rng):
        g = cycle_graph(16)
        assert run_local(g, LocalMaximaFragment(), Model.DET).rounds == 1
        assert run_local(g, RankWithinBall(), Model.DET).rounds == 1

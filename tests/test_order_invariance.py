"""Tests for the order-invariance machinery (Naor–Stockmeyer angle)."""

import random

import pytest

from repro.algorithms import LinialColoring
from repro.core import Model, run_local
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_regular_graph,
)
from repro.transforms import (
    LocalMaximaFragment,
    RankWithinBall,
    check_order_invariance,
    order_preserving_remap,
)


class TestRemap:
    def test_preserves_order(self, rng):
        ids = [5, 2, 9, 0, 7]
        remapped = order_preserving_remap(ids, rng)
        for i in range(len(ids)):
            for j in range(len(ids)):
                assert (ids[i] < ids[j]) == (remapped[i] < remapped[j])

    def test_changes_values(self, rng):
        ids = list(range(30))
        remapped = order_preserving_remap(ids, rng)
        assert remapped != ids

    def test_remap_ids_distinct(self, rng):
        ids = [3, 1, 4, 1 + 5, 9, 2 + 6, 5]
        remapped = order_preserving_remap(ids, rng)
        assert len(set(remapped)) == len(set(ids))


class TestInvarianceChecker:
    def test_local_maxima_is_invariant(self, rng):
        g = random_regular_graph(50, 3, rng)
        assert check_order_invariance(
            lambda: LocalMaximaFragment(), g, id_space_key=None
        )

    def test_rank_within_ball_is_invariant(self):
        g = cycle_graph(40)
        assert check_order_invariance(
            lambda: RankWithinBall(), g, id_space_key=None
        )

    def test_linial_is_not_invariant(self, rng):
        """Linial's algorithm reads actual ID bits (polynomial
        encodings) — the checker must produce a dependence
        certificate."""
        g = random_regular_graph(60, 4, rng)
        assert not check_order_invariance(lambda: LinialColoring(), g)

    def test_custom_ids_accepted(self, rng):
        g = path_graph(20)
        ids = [100 + 3 * v for v in range(20)]
        assert check_order_invariance(
            lambda: LocalMaximaFragment(),
            g,
            ids=ids,
            id_space_key=None,
        )


class TestControlAlgorithms:
    def test_local_maxima_output_is_independent_set(self, rng):
        g = random_regular_graph(80, 4, rng)
        result = run_local(g, LocalMaximaFragment(), Model.DET)
        chosen = {v for v, out in enumerate(result.outputs) if out == 1}
        assert chosen  # at least the global maximum joins
        for v in chosen:
            assert not any(u in chosen for u in g.neighbors(v))

    def test_rank_is_defective_coloring(self, rng):
        g = random_regular_graph(60, 5, rng)
        result = run_local(g, RankWithinBall(), Model.DET)
        assert all(0 <= out <= 5 for out in result.outputs)

    def test_both_run_in_one_round(self, rng):
        g = cycle_graph(16)
        assert run_local(g, LocalMaximaFragment(), Model.DET).rounds == 1
        assert run_local(g, RankWithinBall(), Model.DET).rounds == 1

"""Tests for the lower-bound machinery: formulas, the verified 0-round
base case, and the round-elimination arithmetic."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lowerbounds import (
    amplification_chain,
    closed_form_optimum,
    corollary2_rounds,
    gap_theorem_threshold,
    girth_requirement,
    kmw_lower_bound,
    lemma1_failure,
    lemma2_failure,
    linial_lower_bound,
    max_eliminable_rounds,
    monochromatic_probability,
    one_round_elimination,
    optimal_zero_round_failure,
    paper_amplified_failure,
    port_aware_failure,
    theorem3_size_transfer,
    theorem4_rounds,
    theorem5_rounds,
    worst_edge_failure,
)


class TestZeroRound:
    def test_monochromatic_probability(self):
        assert monochromatic_probability([0.5, 0.5], 0) == 0.25

    def test_worst_edge_uniform(self):
        assert worst_edge_failure([0.25] * 4) == pytest.approx(1 / 16)

    def test_worst_edge_skewed_is_worse(self):
        uniform = worst_edge_failure([1 / 3] * 3)
        skewed = worst_edge_failure([0.5, 0.3, 0.2])
        assert skewed > uniform

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            worst_edge_failure([0.9, 0.3])
        with pytest.raises(ValueError):
            worst_edge_failure([-0.1, 1.1])

    def test_closed_form(self):
        assert closed_form_optimum(3) == pytest.approx(1 / 9)
        with pytest.raises(ValueError):
            closed_form_optimum(0)

    @pytest.mark.parametrize("delta", [3, 4, 8, 16])
    def test_scipy_optimum_matches_closed_form(self, delta):
        value = optimal_zero_round_failure(delta)
        assert value == pytest.approx(closed_form_optimum(delta), rel=1e-3)

    def test_without_scipy_path(self):
        assert optimal_zero_round_failure(5, use_scipy=False) == (
            pytest.approx(1 / 25)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0.01, 1.0), min_size=3, max_size=8),
    )
    def test_pigeonhole_floor(self, weights):
        """No distribution beats 1/Δ² — the Theorem 4 base case."""
        total = sum(weights)
        distribution = [w / total for w in weights]
        delta = len(distribution)
        assert worst_edge_failure(distribution) >= closed_form_optimum(
            delta
        ) - 1e-12

    def test_port_aware_strategies_cannot_beat_floor(self):
        delta = 3
        floor = closed_form_optimum(delta)
        strategies = [
            lambda order: [1.0 / delta] * delta,  # uniform
            lambda order: [
                1.0 if c == order[0] else 0.0 for c in range(delta)
            ],  # copy first port's color
            lambda order: [
                0.8 if c == order[-1] else 0.1 for c in range(delta)
            ],  # biased to last port
        ]
        for strategy in strategies:
            assert port_aware_failure(strategy, delta) >= floor - 1e-12


class TestRoundElimination:
    def test_lemma_formulas(self):
        assert lemma1_failure(1e-9, 3) == pytest.approx(
            6 * (1e-9) ** (1 / 3)
        )
        assert lemma2_failure(1e-8, 3) == pytest.approx(4 * (1e-8) ** 0.25)

    def test_probabilities_clamped(self):
        assert lemma1_failure(0.9, 10) == 1.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            lemma1_failure(0.0, 3)
        with pytest.raises(ValueError):
            lemma2_failure(1.5, 3)

    def test_chain_monotone_increasing(self):
        chain = amplification_chain(1e-30, 3, 5)
        assert len(chain) == 6
        assert all(b >= a for a, b in zip(chain, chain[1:]))

    def test_one_step_composition(self):
        p = 1e-20
        assert one_round_elimination(p, 3) == pytest.approx(
            lemma2_failure(lemma1_failure(p, 3), 3)
        )

    def test_paper_closed_form_dominates_base(self):
        # For tiny p, even after t steps the closed form stays small.
        p = 1e-300
        value = paper_amplified_failure(p, 3, 3)
        assert value < 1.0

    def test_max_eliminable_rounds_grows_with_log_inv_p(self):
        few = max_eliminable_rounds(1e-6, 3)
        many = max_eliminable_rounds(1e-200, 3)
        assert many > few

    def test_girth_requirement(self):
        assert girth_requirement(4) == 10


class TestBoundFormulas:
    def test_theorem4_monotonicity_in_p(self):
        lo = theorem4_rounds(10 ** 6, 3, 1e-3)
        hi = theorem4_rounds(10 ** 6, 3, 1e-30)
        assert hi >= lo

    def test_theorem4_capped_by_log_delta_n(self):
        import math as m

        value = theorem4_rounds(1000, 3, 1e-300)
        assert value <= m.log(1000) / m.log(3)

    def test_theorem4_invalid_p(self):
        with pytest.raises(ValueError):
            theorem4_rounds(100, 3, 0.0)

    def test_corollary2_loglog_growth(self):
        small = corollary2_rounds(2 ** 16, 3)
        large = corollary2_rounds(2 ** 256, 3)
        assert large > small
        # log log: squaring n many times adds little.
        assert large <= small + 6

    def test_theorem5_log_growth(self):
        small = theorem5_rounds(2 ** 10, 4)
        large = theorem5_rounds(2 ** 20, 4)
        assert large == pytest.approx(2 * small + 1)

    def test_linial_bound(self):
        assert linial_lower_bound(2 ** 16) >= 1

    def test_kmw_bound_min_structure(self):
        # For huge Δ the n-term binds; for tiny Δ the Δ-term binds.
        by_n = kmw_lower_bound(10 ** 4, 10 ** 9)
        by_delta = kmw_lower_bound(10 ** 9, 4)
        assert by_n == pytest.approx(
            math.sqrt(math.log2(10 ** 4) / math.log2(math.log2(10 ** 4)))
        )
        assert by_delta <= kmw_lower_bound(10 ** 9, 10 ** 4)

    def test_size_transfer(self):
        assert theorem3_size_transfer(2 ** 64) == pytest.approx(8.0)
        assert theorem3_size_transfer(1) == 1.0

    def test_gap_threshold_between_extremes(self):
        from repro.analysis import log_star

        n = 2 ** 20
        mid = gap_theorem_threshold(n, 3)
        assert log_star(n) < mid < math.log2(n)

"""Two-plane telemetry: batched observers, trace analytics, sidecars.

Plane 1 (deterministic): the vectorized backend must feed attached
``BatchRunObserver`` instances natively — no fallback — and the
summaries/trace bytes it produces must be byte-identical to the scalar
engines'.  Covers the scalar shim (per-event streams re-batched), the
crash/budget fault paths, zero-round runs, summary v2 merge
fail-loudness, trace schema v1–v3 fixtures, and the streaming query
layer.

Plane 2 (nondeterministic): the timing sidecar and progress reporters
must attach without perturbing plane 1, attribute backends/kernels,
and keep their bytes out of the deterministic stream.

Everything runs on a numpy-less install too: vectorized-specific cases
skip (never fail) when the ``[perf]`` extra is absent.
"""

import io
import json
import random
from pathlib import Path

import pytest

from repro.algorithms.rand_tree_coloring import (
    ColorBiddingAlgorithm,
    ColorBiddingConfig,
)
from repro.core import (
    Model,
    available_backend_names,
    run_local,
    use_backend,
)
from repro.core.algorithm import SyncAlgorithm
from repro.core.engine import SETUP_ROUND, observe_runs, run_local_reference
from repro.core.errors import BudgetExceededError
from repro.faults import FaultPlan
from repro.graphs.generators import cycle_graph, random_tree_bounded_degree
from repro.obs import (
    SUMMARY_VERSION,
    SUPPORTED_TRACE_VERSIONS,
    TRACE_VERSION,
    BatchRunObserver,
    JsonlTraceObserver,
    MetricsObserver,
    RoundBatch,
    iter_scalar_events,
    iter_trace,
    merge_summaries,
    read_trace,
)
from repro.obs.query import (
    aggregate_trace,
    filter_events,
    merge_aggregates,
    round_timeline,
    vertex_history,
)
from repro.obs.timing import (
    TIMING_SCHEMA,
    ProgressReporter,
    TimingSidecarObserver,
    read_timing_sidecar,
)

NUMPY_AVAILABLE = "vectorized" in available_backend_names()

needs_vectorized = pytest.mark.skipif(
    not NUMPY_AVAILABLE,
    reason="vectorized backend unavailable ([perf] extra not installed)",
)

FIXTURES = Path(__file__).parent / "fixtures" / "traces"


def _color_bidding_tree(n=200, seed=1):
    graph = random_tree_bounded_degree(n, 9, random.Random(seed))
    return graph, {"config": ColorBiddingConfig(), "main_palette": 6}


def _capture(backend, *, fault_plan=None, n=200, node_steps=True):
    """(summary, trace bytes, result) for ColorBidding on ``backend``."""
    graph, params = _color_bidding_tree(n=n)
    metrics = MetricsObserver()
    sink = io.StringIO()
    trace = JsonlTraceObserver(
        sink, node_steps=node_steps, payload_values=True
    )
    result = run_local(
        graph,
        ColorBiddingAlgorithm(),
        Model.RAND,
        seed=7,
        global_params=params,
        fault_plan=fault_plan,
        observers=[metrics, trace],
        backend=backend,
    )
    return metrics.summary(), sink.getvalue(), result


@pytest.fixture
def no_fallback(monkeypatch):
    """Make any vectorized->scalar fallback an immediate test failure."""
    import repro.backends.vectorized as vec

    def boom(*args, **kwargs):
        raise AssertionError(
            "vectorized backend fell back to the scalar engine"
        )

    monkeypatch.setattr(vec, "_run_local_fast", boom)


class Sleeper(SyncAlgorithm):
    """Halts in setup: a zero-round run (setup batch only)."""

    name = "sleeper"

    def setup(self, ctx):
        ctx.publish("z")
        ctx.halt(0)

    def step(self, ctx, inbox):  # pragma: no cover - never runs
        raise AssertionError("stepped a halted vertex")


# ----------------------------------------------------------------------
# Plane 1: native batched emission on the vectorized backend
# ----------------------------------------------------------------------
@needs_vectorized
class TestVectorizedBatchedObservers:
    def test_no_fallback_with_observers_attached(self, no_fallback):
        summary, trace_bytes, result = _capture("vectorized")
        assert summary["metrics"]["halted_total"]["value"] > 0
        assert trace_bytes

    def test_summary_and_trace_bytes_match_fast(self, no_fallback):
        fast = _capture("fast")
        vec = _capture("vectorized")
        assert vec[0] == fast[0]
        assert vec[1] == fast[1]
        assert vec[2].outputs == fast[2].outputs

    def test_crash_plan_batches_match_fast(self, no_fallback):
        plan = FaultPlan(seed=5, crashes={3: 0, 11: 0})
        fast = _capture("fast", fault_plan=plan)
        vec = _capture("vectorized", fault_plan=plan)
        assert vec[0] == fast[0]
        assert vec[1] == fast[1]
        assert fast[2].failures  # the crashes actually landed

    def test_budget_exhaustion_reaches_on_run_fault(self, no_fallback):
        class FaultLog(BatchRunObserver):
            def __init__(self):
                super().__init__()
                self.run_faults = []

            def on_run_fault(self, round_index, fault):
                self.run_faults.append((round_index, fault.kind))

        graph, params = _color_bidding_tree()
        plan = FaultPlan(seed=5, round_budget=2)
        log = FaultLog()
        with pytest.raises(BudgetExceededError):
            run_local(
                graph,
                ColorBiddingAlgorithm(),
                Model.RAND,
                seed=7,
                global_params=params,
                fault_plan=plan,
                observers=[log],
                backend="vectorized",
            )
        assert log.run_faults == [(2, "budget")]

    def test_backend_info_reported(self, no_fallback):
        class Attribution(BatchRunObserver):
            def __init__(self):
                super().__init__()
                self.seen = []

            def on_backend_info(self, backend, kernel):
                self.seen.append((backend, kernel))

        graph, params = _color_bidding_tree(n=60)
        obs = Attribution()
        run_local(
            graph,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=7,
            global_params=params,
            observers=[obs],
            backend="vectorized",
        )
        assert obs.seen == [("vectorized", "ColorBiddingKernel")]

    def test_non_batch_observer_still_falls_back(self):
        class Scalar(MetricsObserver):
            batch_capable = False

        fast = _capture("fast")
        graph, params = _color_bidding_tree()
        metrics = Scalar()
        run_local(
            graph,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=7,
            global_params=params,
            observers=[metrics],
            backend="vectorized",
        )
        assert metrics.summary() == fast[0]

    def test_zero_round_run_emits_setup_batch(self):
        # Sleeper has no vectorized kernel, so the backend legitimately
        # falls back — the scalar shim must still batch the setup round.
        rounds_seen = []

        class SetupWatcher(BatchRunObserver):
            def on_round_batch(self, batch):
                rounds_seen.append(
                    (batch.round_index, list(batch.published))
                )

        sink_fast, sink_vec = io.StringIO(), io.StringIO()
        g = cycle_graph(6)
        run_local(
            g,
            Sleeper(),
            Model.DET,
            observers=[SetupWatcher(), JsonlTraceObserver(sink_vec)],
            backend="vectorized",
        )
        run_local(
            g,
            Sleeper(),
            Model.DET,
            observers=[JsonlTraceObserver(sink_fast)],
            backend="fast",
        )
        assert sink_vec.getvalue() == sink_fast.getvalue()
        assert rounds_seen and rounds_seen[0][0] == SETUP_ROUND
        assert rounds_seen[0][1] == list(range(6))


# ----------------------------------------------------------------------
# Plane 1: the scalar shim re-batches per-event streams
# ----------------------------------------------------------------------
class TestScalarShim:
    def test_shim_batches_match_scalar_events(self):
        batches = []

        class Collect(BatchRunObserver):
            def on_round_batch(self, batch):
                batches.append(batch)

        graph, params = _color_bidding_tree(n=60)
        run_local_reference(
            graph,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=7,
            global_params=params,
            observers=[Collect()],
        )
        assert batches[0].round_index == SETUP_ROUND
        # Round batches carry consistent per-round facts.
        for batch in batches[1:]:
            assert batch.round_index >= 0
            assert len(batch.halted_verts) == len(batch.halt_values)
            assert batch.messages == 2 * graph.num_edges
        total_halts = sum(len(b.halted_verts) for b in batches)
        assert total_halts == graph.num_vertices

    def test_iter_scalar_events_orders_publish_before_halt(self):
        batch = RoundBatch(
            3,
            stepped=[1, 2],
            published=[2, 1],
            publish_values=["b", "a"],
            halted_verts=[2],
            halt_values=["out"],
        )
        events = list(iter_scalar_events(batch))
        kinds = [(kind, v) for kind, _, v, *rest in events]
        assert kinds == [
            ("step", 1),
            ("publish", 1),
            ("step", 2),
            ("publish", 2),
            ("halt", 2),
        ]

    def test_shim_and_metrics_agree_across_engines(self):
        graph, params = _color_bidding_tree(n=60)

        def run(runner):
            metrics = MetricsObserver()
            runner(
                graph,
                ColorBiddingAlgorithm(),
                Model.RAND,
                seed=7,
                global_params=params,
                observers=[metrics],
            )
            return metrics.summary()

        assert run(run_local) == run(run_local_reference)


# ----------------------------------------------------------------------
# Summary v2: merge fail-loudness and new counters
# ----------------------------------------------------------------------
class TestSummaryMerge:
    def _summary(self, n=20):
        metrics = MetricsObserver()
        run_local(
            cycle_graph(n),
            Sleeper(),
            Model.DET,
            observers=[metrics],
        )
        return metrics.summary()

    def test_summary_is_version_2_with_derived_block(self):
        summary = self._summary()
        assert summary["version"] == SUMMARY_VERSION == 2
        derived = summary["derived"]
        assert derived["runs_observed"] == 1
        assert derived["empirical_failure_rate"] == 0.0
        metrics = summary["metrics"]
        assert metrics["runs_succeeded_total"]["value"] == 1
        assert metrics["runs_vertices_total"]["value"] == 20

    def test_merge_is_order_insensitive(self):
        a, b = self._summary(10), self._summary(30)
        assert merge_summaries([a, b]) == merge_summaries([b, a])
        merged = merge_summaries([a, b])
        assert merged["metrics"]["runs_vertices_total"]["value"] == 40
        assert merged["derived"]["runs_observed"] == 2

    def test_merge_rejects_unknown_top_level_section(self):
        bad = self._summary()
        bad["zstd_frames"] = [1, 2]
        with pytest.raises(ValueError, match="unknown section"):
            merge_summaries([self._summary(), bad])

    def test_merge_rejects_newer_version(self):
        newer = self._summary()
        newer["version"] = SUMMARY_VERSION + 1
        with pytest.raises(ValueError, match="upgrade before merging"):
            merge_summaries([newer])

    def test_merge_rejects_foreign_schema_and_metric_type(self):
        foreign = self._summary()
        foreign["schema"] = "someone.else"
        with pytest.raises(ValueError, match="foreign summary schema"):
            merge_summaries([foreign])
        odd = self._summary()
        odd["metrics"]["halted_total"] = {"type": "tdigest", "value": 1}
        with pytest.raises(ValueError, match="unknown type"):
            merge_summaries([odd])


# ----------------------------------------------------------------------
# Trace schema versions v1-v3
# ----------------------------------------------------------------------
class TestTraceVersions:
    @pytest.mark.parametrize("version", SUPPORTED_TRACE_VERSIONS)
    def test_fixture_traces_read(self, version):
        events = read_trace(str(FIXTURES / f"trace_v{version}.jsonl"))
        start = events[0]
        assert start["version"] == version
        if version >= 3:
            assert start["emission_modes"] == ["per-event", "batched"]
        else:
            assert "emission_modes" not in start
        assert events[-1]["event"] == "run_end"

    def test_bodies_identical_across_fixture_versions(self):
        # v3 changed only the run_start header; event bodies must be
        # byte-identical across the three fixtures.
        def bodies(version):
            path = FIXTURES / f"trace_v{version}.jsonl"
            return [
                line
                for line in path.read_text().splitlines()
                if '"event":"run_start"' not in line
            ]

        assert bodies(1) == bodies(2) == bodies(3)

    def test_future_version_rejected_with_explicit_error(self, tmp_path):
        future = TRACE_VERSION + 1
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {
                    "event": "run_start",
                    "schema": "repro.obs.trace",
                    "version": future,
                    "run": 0,
                }
            )
            + "\n"
        )
        with pytest.raises(ValueError, match=str(future)):
            list(iter_trace(str(path)))

    def test_current_writer_stamps_v3(self):
        sink = io.StringIO()
        run_local(
            cycle_graph(4),
            Sleeper(),
            Model.DET,
            observers=[JsonlTraceObserver(sink)],
        )
        start = json.loads(sink.getvalue().splitlines()[0])
        assert start["version"] == TRACE_VERSION == 3


# ----------------------------------------------------------------------
# Streaming query layer
# ----------------------------------------------------------------------
class TestTraceQuery:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("q") / "trace.jsonl"
        graph, params = _color_bidding_tree(n=80)
        with JsonlTraceObserver(str(path), node_steps=True) as obs:
            run_local(
                graph,
                ColorBiddingAlgorithm(),
                Model.RAND,
                seed=7,
                global_params=params,
                observers=[obs],
            )
        return str(path)

    def test_aggregate_streams_and_counts(self, trace_path):
        agg = aggregate_trace(iter_trace(trace_path))
        assert agg["runs"] == 1
        assert agg["halted_total"] == 80
        assert agg["events"] == sum(agg["events_by_kind"].values())
        assert agg["per_run"][0]["algorithm"] == "color-bidding"

    def test_aggregate_accepts_generator_not_list(self, trace_path):
        # A generator can only be consumed once: this proves single-pass.
        gen = iter_trace(trace_path)
        agg = aggregate_trace(gen)
        assert agg["events"] > 0
        assert list(gen) == []  # fully drained in the single pass

    def test_merge_aggregates_sums_and_rejects_foreign(self, trace_path):
        a = aggregate_trace(iter_trace(trace_path))
        merged = merge_aggregates([a, a])
        assert merged["events"] == 2 * a["events"]
        assert merged["runs"] == 2
        with pytest.raises(ValueError, match="schema"):
            merge_aggregates([a, {"schema": "other", "version": 1}])

    def test_round_timeline_rows(self, trace_path):
        rows = round_timeline(iter_trace(trace_path), run=0)
        by_round = {r["round"]: r for r in rows}
        assert by_round[SETUP_ROUND]["publishes"] == 80
        assert by_round[0]["active"] == 80
        assert sum(r["halted"] for r in rows) == 80

    def test_vertex_history_and_filter(self, trace_path):
        history = vertex_history(iter_trace(trace_path), 3, run=0)
        assert history, "vertex 3 must have events"
        assert all(e["v"] == 3 for e in history)
        assert history[-1]["event"] in ("halt", "failure")
        pubs = list(
            filter_events(
                iter_trace(trace_path), kinds=["publish"], vertex=3
            )
        )
        assert pubs == [e for e in history if e["event"] == "publish"]

    def test_filter_rejects_unknown_kind(self, trace_path):
        with pytest.raises(ValueError, match="pubish"):
            list(
                filter_events(iter_trace(trace_path), kinds=["pubish"])
            )

    def test_query_missing_run_raises(self, trace_path):
        with pytest.raises(ValueError, match="run 9"):
            round_timeline(iter_trace(trace_path), run=9)


# ----------------------------------------------------------------------
# Plane 2: timing sidecar and progress
# ----------------------------------------------------------------------
class TestTimingSidecar:
    def _run_traced(self, backend, sidecar_sink):
        graph, params = _color_bidding_tree(n=60)
        sink = io.StringIO()
        trace = JsonlTraceObserver(sink)
        timing = TimingSidecarObserver(sidecar_sink, sample_every=1)
        run_local(
            graph,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=7,
            global_params=params,
            observers=[trace, timing],
            backend=backend,
        )
        return sink.getvalue()

    def test_sidecar_lines_and_trace_unperturbed(self):
        side = io.StringIO()
        graph, params = _color_bidding_tree(n=60)
        bare_sink = io.StringIO()
        run_local(
            graph,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=7,
            global_params=params,
            observers=[JsonlTraceObserver(bare_sink)],
            backend="fast",
        )
        traced = self._run_traced("fast", side)
        # Sidecar attachment changes no deterministic-plane bytes.
        assert traced == bare_sink.getvalue()
        lines = [json.loads(x) for x in side.getvalue().splitlines()]
        assert lines[0]["event"] == "timing_run_start"
        assert lines[0]["schema"] == TIMING_SCHEMA
        assert lines[-1]["event"] == "timing_run_end"
        assert lines[-1]["wall_seconds"] >= 0
        rounds = [x for x in lines if x["event"] == "timing_round"]
        assert rounds and all(x["dt"] >= 0 for x in rounds)

    @needs_vectorized
    def test_sidecar_attributes_vectorized_kernel(self, no_fallback):
        side = io.StringIO()
        self._run_traced("vectorized", side)
        end = [
            json.loads(x) for x in side.getvalue().splitlines()
        ][-1]
        assert end["backend"] == "vectorized"
        assert end["kernel"] == "ColorBiddingKernel"

    def test_reader_roundtrip_and_schema_guard(self, tmp_path):
        path = tmp_path / "timing.jsonl"
        with TimingSidecarObserver(str(path)) as timing:
            run_local(
                cycle_graph(8),
                Sleeper(),
                Model.DET,
                observers=[timing],
            )
        lines = list(read_timing_sidecar(str(path)))
        assert lines[0]["event"] == "timing_run_start"
        trace_file = tmp_path / "det.jsonl"
        with JsonlTraceObserver(str(trace_file)) as trace:
            run_local(
                cycle_graph(8),
                Sleeper(),
                Model.DET,
                observers=[trace],
            )
        with pytest.raises(ValueError, match="repro.obs.trace"):
            list(read_timing_sidecar(str(trace_file)))

    def test_progress_reporter_writes_summary_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, min_interval=0.0)
        graph, params = _color_bidding_tree(n=60)
        run_local(
            graph,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=7,
            global_params=params,
            observers=[reporter],
        )
        text = stream.getvalue()
        assert "color-bidding" in text
        assert "done" in text

    def test_sweep_progress_callback_fires_per_cell(self):
        from repro.analysis.experiments import run_sweep

        ticks = []
        run_sweep(
            "progress",
            [2.0, 3.0],
            lambda x, seed: x,
            seeds=(0, 1),
            progress=lambda done, total, outcome: ticks.append(
                (done, total, outcome.status)
            ),
        )
        assert [(d, t) for d, t, _ in ticks] == [
            (1, 4),
            (2, 4),
            (3, 4),
            (4, 4),
        ]
        assert all(status == "ok" for _, _, status in ticks)


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
class TestExports:
    def _summary(self):
        metrics = MetricsObserver()
        run_local(
            cycle_graph(12),
            Sleeper(),
            Model.DET,
            observers=[metrics],
        )
        return metrics.summary()

    def test_prometheus_text_stable_and_typed(self):
        from repro.obs import to_prometheus

        text = to_prometheus(self._summary())
        assert text == to_prometheus(self._summary())  # byte-stable
        assert "# TYPE repro_halted_total counter" in text
        assert "repro_halted_total 12" in text
        assert "repro_halt_round_count 12" in text
        assert "repro_derived_runs_observed 1" in text

    def test_json_snapshot_roundtrip(self):
        from repro.obs import to_json_snapshot

        snap = json.loads(to_json_snapshot(self._summary()))
        assert snap["schema"] == "repro.obs.export"
        assert snap["summary"]["version"] == SUMMARY_VERSION

    def test_export_rejects_foreign_summary(self):
        from repro.obs import to_prometheus

        with pytest.raises(ValueError, match="schema"):
            to_prometheus({"schema": "nope", "version": 1})

    def test_write_infers_format_from_extension(self, tmp_path):
        from repro.obs import write_metrics_export

        summary = self._summary()
        prom = tmp_path / "m.prom"
        js = tmp_path / "m.json"
        assert write_metrics_export(summary, str(prom)) == "prometheus"
        assert write_metrics_export(summary, str(js)) == "json"
        assert prom.read_text().startswith("# TYPE")
        assert json.loads(js.read_text())["schema"] == "repro.obs.export"

"""Tests for the LCL problem verifiers: accept exactly legal labelings."""

import pytest

from repro.core.errors import VerificationError
from repro.graphs import Graph, ports_coloring
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_regular_bipartite_graph,
    star_graph,
)
from repro.lcl import (
    EdgeColoringLCL,
    KColoring,
    MaximalIndependentSet,
    MaximalMatching,
    ProperColoring,
    SinklessColoring,
    SinklessOrientation,
    WeakColoring,
    count_sinks,
    independent_set_from_labeling,
    matching_edges,
    orientation_out_degrees,
    palette_size,
)


class TestKColoring:
    def test_accepts_proper(self):
        g = path_graph(4)
        assert KColoring(2).is_solution(g, [0, 1, 0, 1])

    def test_rejects_conflict(self):
        g = path_graph(4)
        violations = KColoring(2).violations(g, [0, 0, 1, 0])
        assert {v.vertex for v in violations} == {0, 1}

    def test_rejects_out_of_palette(self):
        g = path_graph(2)
        assert not KColoring(2).is_solution(g, [0, 5])

    def test_rejects_non_int(self):
        g = path_graph(2)
        assert not KColoring(2).is_solution(g, [0, "red"])

    def test_wrong_length_raises(self):
        g = path_graph(3)
        with pytest.raises(VerificationError):
            KColoring(2).violations(g, [0, 1])

    def test_check_raises_with_detail(self):
        g = path_graph(2)
        with pytest.raises(VerificationError):
            KColoring(3).check(g, [1, 1])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KColoring(0)

    def test_odd_cycle_needs_three(self):
        g = cycle_graph(5)
        # No proper 2-coloring exists; verify the checker catches a
        # best-effort attempt.
        assert not KColoring(2).is_solution(g, [0, 1, 0, 1, 0])
        assert KColoring(3).is_solution(g, [0, 1, 0, 1, 2])


class TestProperAndWeak:
    def test_proper_unbounded_palette(self):
        g = path_graph(3)
        assert ProperColoring().is_solution(g, [10, 999, 10])

    def test_proper_rejects_negative(self):
        g = path_graph(2)
        assert not ProperColoring().is_solution(g, [-1, 0])

    def test_weak_coloring(self):
        g = star_graph(3)
        # Center differs from all leaves: fine even though leaves agree.
        assert WeakColoring(2).is_solution(g, [0, 1, 1, 1])
        assert not WeakColoring(2).is_solution(g, [1, 1, 1, 1])

    def test_weak_isolated_vertex_ok(self):
        g = Graph(2, [])
        assert WeakColoring(1).is_solution(g, [0, 0])

    def test_palette_size(self):
        assert palette_size([3, 1, 3, 7]) == 3


class TestMIS:
    def test_accepts_mis(self):
        g = path_graph(4)
        assert MaximalIndependentSet().is_solution(g, [1, 0, 1, 0])

    def test_rejects_non_independent(self):
        g = path_graph(2)
        assert not MaximalIndependentSet().is_solution(g, [1, 1])

    def test_rejects_non_maximal(self):
        g = path_graph(3)
        assert not MaximalIndependentSet().is_solution(g, [0, 0, 1])

    def test_rejects_bad_label(self):
        g = path_graph(2)
        assert not MaximalIndependentSet().is_solution(g, [2, 0])

    def test_extract_set(self):
        assert independent_set_from_labeling([1, 0, 1]) == {0, 2}


class TestMatching:
    def test_accepts_perfect(self):
        g = path_graph(4)
        # 0-1 and 2-3 matched.
        labeling = [0, 0, 1, 0]
        assert MaximalMatching().is_solution(g, labeling)
        assert matching_edges(g, labeling) == {(0, 1), (2, 3)}

    def test_rejects_both_unmatched_edge(self):
        g = path_graph(2)
        assert not MaximalMatching().is_solution(g, [None, None])

    def test_rejects_dangling_pointer(self):
        g = path_graph(3)
        # 1 claims port 0 (-> 0) but 0 is unmatched.
        assert not MaximalMatching().is_solution(g, [None, 0, None])

    def test_rejects_bad_port(self):
        g = path_graph(2)
        assert not MaximalMatching().is_solution(g, [7, 0])

    def test_unmatched_ok_when_saturated(self):
        g = path_graph(3)
        labeling = [0, 0, None]  # 0-1 matched, 2 unmatched but blocked
        assert MaximalMatching().is_solution(g, labeling)


class TestSinkless:
    def _ring_inputs(self, g, coloring):
        return {"edge_colors": ports_coloring(g, coloring)}

    def test_orientation_accepts(self):
        g = cycle_graph(4)
        # Orient the cycle consistently: every vertex out-degree 1.
        labeling = []
        for v in g.vertices():
            out = [g.endpoint(v, p) == (v + 1) % 4 for p in range(2)]
            labeling.append(tuple(out))
        problem = SinklessOrientation()
        assert problem.is_solution(g, labeling)
        assert orientation_out_degrees(g, labeling) == [1, 1, 1, 1]
        assert count_sinks(g, labeling) == 0

    def test_orientation_rejects_sink(self):
        g = cycle_graph(3)
        labeling = [(False, False), (True, True), (True, True)]
        problem = SinklessOrientation()
        messages = [v.message for v in problem.violations(g, labeling)]
        assert any("sink" in m for m in messages)

    def test_orientation_rejects_inconsistency(self):
        g = path_graph(2)
        labeling = [(True,), (True,)]  # both claim the edge outgoing
        assert not SinklessOrientation().is_solution(g, labeling)

    def test_orientation_rejects_malformed(self):
        g = path_graph(2)
        assert not SinklessOrientation().is_solution(g, [(True,), "x"])

    def test_sinkless_coloring(self, rng):
        g, coloring = random_regular_bipartite_graph(8, 3, rng)
        problem = SinklessColoring(3)
        inputs = self._ring_inputs(g, coloring)
        # A proper 3-coloring is in particular sinkless: construct one
        # from the bipartition (2 colors suffice).
        from repro.graphs import bipartite_sides

        left, _ = bipartite_sides(g)
        labeling = [0 if v in left else 1 for v in g.vertices()]
        assert problem.is_solution(g, labeling, inputs)

    def test_sinkless_coloring_monochromatic_rejected(self, rng):
        g, coloring = random_regular_bipartite_graph(8, 3, rng)
        problem = SinklessColoring(3)
        inputs = self._ring_inputs(g, coloring)
        # Make every vertex's color equal to one fixed color: some edge
        # of that color must be monochromatic.
        labeling = [0] * g.num_vertices
        assert not problem.is_solution(g, labeling, inputs)

    def test_sinkless_coloring_needs_inputs(self):
        g = cycle_graph(4)
        assert not SinklessColoring(2).is_solution(g, [0, 1, 0, 1])


class TestEdgeColoringLCL:
    def test_accepts(self):
        g = path_graph(3)
        labeling = [(0,), (0, 1), (1,)]
        assert EdgeColoringLCL(2).is_solution(g, labeling)

    def test_rejects_disagreement(self):
        g = path_graph(2)
        assert not EdgeColoringLCL(2).is_solution(g, [(0,), (1,)])

    def test_rejects_local_conflict(self):
        g = star_graph(2)
        labeling = [(0, 0), (0,), (0,)]
        assert not EdgeColoringLCL(2).is_solution(g, labeling)

    def test_rejects_bad_shape(self):
        g = path_graph(2)
        assert not EdgeColoringLCL(2).is_solution(g, [(0, 1), (0,)])

"""Tests for the locality dataflow engine (rules LM010/LM011).

Covers: the AbsVal lattice algebra, IR lowering, static contract
recovery from ``DriverSpec``/``subject_from_algorithm`` declarations,
the seeded radius/determinism fixtures (exact lines), the registry
coverage meta-test (no driver silently skipped), suppression interplay
with the pattern rules, baselines (demotion + stale-entry expiry),
SARIF 2.1.0 output (motion-stable fingerprints), the incremental
result cache, and the new ``repro lint`` CLI flags.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.staticcheck import Severity, analyze_paths, load_corpus
from repro.staticcheck.baseline import (
    BASELINE_VERSION,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.cache import cached_analyze
from repro.staticcheck.callgraph import CallGraph
from repro.staticcheck.dataflow import (
    SYMMETRY_BREAKING_LCLS,
    analyzed_driver_names,
    extract_contracts,
)
from repro.staticcheck.dataflow.ir import (
    Bind,
    If,
    Loop,
    Ret,
    TargetKind,
    lower_function,
)
from repro.staticcheck.dataflow.lattice import (
    BOTTOM,
    ORDER,
    R0,
    RIN,
    RTOP,
    SEED,
    AbsVal,
    join,
    join_all,
)
from repro.staticcheck.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    fingerprint,
    to_sarif,
)

FIXTURES = Path(__file__).parent / "fixtures" / "staticcheck"
PACKAGE_DIR = Path(repro.__file__).resolve().parent
BROKEN_FIXTURES = Path(__file__).parent / "test_verify_relations.py"


def seeded_lines(fixture):
    """1-based lines carrying a ``# seeded:`` marker in a fixture."""
    source = (FIXTURES / fixture).read_text()
    return {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if "# seeded:" in text
    }


def line_of(path, needle, occurrence=1):
    """1-based line of the Nth occurrence of ``needle`` in ``path``."""
    seen = 0
    for number, text in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if needle in text:
            seen += 1
            if seen == occurrence:
                return number
    raise AssertionError(f"{needle!r} (#{occurrence}) not in {path}")


@pytest.fixture(scope="module")
def package_graph():
    return CallGraph(load_corpus([PACKAGE_DIR]))


class TestLatticeAlgebra:
    def test_join_takes_max_radius(self):
        assert join(AbsVal(radius=R0), AbsVal(radius=RIN)).radius == RIN
        assert join(AbsVal(radius=RIN), AbsVal(radius=RTOP)).radius == RTOP

    def test_join_unions_effects_and_taint(self):
        a = AbsVal(effects=frozenset({SEED}), id_taint=True)
        b = AbsVal(effects=frozenset({ORDER}))
        joined = join(a, b)
        assert joined.effects == {SEED, ORDER}
        assert joined.id_taint

    def test_bottom_is_identity(self):
        value = AbsVal(radius=RTOP, id_taint=True, tag="ctx")
        assert join(BOTTOM, value) == value
        assert join(value, BOTTOM) == value

    def test_differing_tags_merge_to_untagged(self):
        assert join(AbsVal(tag="ctx"), AbsVal(tag="self")).tag == ""
        assert join(AbsVal(tag="ctx"), AbsVal(tag="ctx")).tag == "ctx"

    def test_join_all_folds(self):
        joined = join_all(
            [
                AbsVal(radius=R0),
                AbsVal(radius=RIN, effects=frozenset({ORDER})),
                AbsVal(id_taint=True),
            ]
        )
        assert joined.radius == RIN
        assert joined.effects == {ORDER}
        assert joined.id_taint


class TestIRLowering:
    @pytest.fixture()
    def lowered(self, tmp_path):
        source = (
            "class Algo:\n"
            "    def step(self, ctx, inbox):\n"
            "        total = 0\n"
            "        for msg in inbox:\n"
            "            total += msg\n"
            "        if total > 0:\n"
            "            self._acc = total\n"
            "            ctx.state['acc'] = total\n"
            "        return total\n"
        )
        path = tmp_path / "lowered.py"
        path.write_text(source)
        module = load_corpus([path])[0]
        import ast

        fn = next(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.FunctionDef) and node.name == "step"
        )
        return lower_function("lowered:Algo.step", fn, module, "Algo")

    def test_context_fields(self, lowered):
        assert lowered.key == "lowered:Algo.step"
        assert lowered.class_name == "Algo"
        assert lowered.params == ["self", "ctx", "inbox"]
        assert lowered.self_name == "self"
        assert "ctx" in lowered.ctx_names

    def test_instruction_shapes(self, lowered):
        kinds = [type(instr) for instr in lowered.instrs]
        assert kinds == [Bind, Loop, If, Ret]
        loop = lowered.instrs[1]
        assert loop.bind is not None and loop.bind.element_of
        aug = loop.body[0]
        assert isinstance(aug, Bind) and aug.augmented

    def test_self_and_state_targets(self, lowered):
        branch = lowered.instrs[2]
        targets = [instr.target for instr in branch.body]
        assert targets[0].kind is TargetKind.SELF_ATTR
        assert targets[0].name == "_acc"
        assert targets[1].kind is TargetKind.STATE_KEY
        assert targets[1].key == "acc"


class TestSeededDataflowFixtures:
    """LM010/LM011 true positives with exact line accounting: every
    ``# seeded:``-marked line fires, and nothing else does."""

    @pytest.mark.parametrize(
        "fixture, rule",
        [("lm010_bad.py", "LM010"), ("lm011_bad.py", "LM011")],
    )
    def test_fixture_lines_match_seeded_markers(self, fixture, rule):
        result = analyze_paths([FIXTURES / fixture])
        assert {d.rule_id for d in result.diagnostics} == {rule}
        assert {d.line for d in result.diagnostics} == seeded_lines(
            fixture
        )
        for diag in result.diagnostics:
            assert diag.severity is Severity.ERROR
            assert diag.hint
            assert diag.chain  # names the entry point it was proved in

    def test_self_channel_message_names_the_attribute(self):
        result = analyze_paths([FIXTURES / "lm010_bad.py"])
        by_line = {d.line: d for d in result.diagnostics}
        shared = by_line[line_of(FIXTURES / "lm010_bad.py", "self._rank)")]
        assert "unbounded" in shared.message

    def test_zero_round_violation_cites_the_contract(self):
        result = analyze_paths([FIXTURES / "lm010_bad.py"])
        zero = next(
            d
            for d in result.diagnostics
            if d.chain == ("ZeroRound.setup",)
        )
        assert "radius-0" in zero.message
        assert "ZeroRound" in zero.message

    def test_laundered_rng_and_set_order_both_fire(self):
        result = analyze_paths([FIXTURES / "lm011_bad.py"])
        messages = " / ".join(d.message for d in result.diagnostics)
        assert "LaunderedSeed" in messages
        assert "OrderLeak" in messages


class TestContractExtraction:
    def test_every_registry_driver_declares_a_contract(
        self, package_graph
    ):
        from repro.algorithms.drivers import DRIVER_REGISTRY

        contracts = extract_contracts(package_graph)
        declared = {c.driver for c in contracts if c.kind == "driver-spec"}
        assert declared >= set(DRIVER_REGISTRY)
        assert len(DRIVER_REGISTRY) >= 11

    def test_linial_contract_details(self, package_graph):
        contracts = extract_contracts(package_graph)
        linial = next(
            c for c in contracts if c.driver == "linial-coloring"
        )
        assert linial.kind == "driver-spec"
        assert linial.model == "DET"
        assert linial.problem == "KColoring"
        assert linial.problem in SYMMETRY_BREAKING_LCLS
        assert "LinialColoring" in linial.classes
        assert linial.radius_label == "O(log* n) ball"
        assert linial.module.endswith("drivers")

    def test_radius_labels_recovered_for_all_specs(self, package_graph):
        contracts = [
            c
            for c in extract_contracts(package_graph)
            if c.kind == "driver-spec"
        ]
        for contract in contracts:
            assert contract.radius_label, contract.driver


class TestRegistryCoverageMeta:
    def test_no_registry_driver_escapes_the_dataflow_passes(
        self, package_graph
    ):
        """The acceptance meta-test: every driver in the runtime
        registry maps to at least one analyzed algorithm class — a
        registry entry the dataflow passes silently skip would make
        `repro lint --strict` a partial gate."""
        from repro.algorithms.drivers import DRIVER_REGISTRY

        analyzed = analyzed_driver_names(package_graph)
        missing = set(DRIVER_REGISTRY) - analyzed
        assert not missing, f"drivers never analyzed: {sorted(missing)}"


class TestBrokenVerifyFixturesAreFlagged:
    """The metamorphic broken fixtures in tests/test_verify_relations.py
    are real model violations — the static passes must agree with the
    runtime verdict (lines computed from source so edits don't rot)."""

    def test_exact_findings(self):
        result = analyze_paths([BROKEN_FIXTURES])
        found = sorted(
            (d.rule_id, d.line) for d in result.diagnostics
        )
        assert found == sorted(
            [
                ("LM010", line_of(BROKEN_FIXTURES, "ctx.halt(ctx.id % 3)")),
                ("LM010", line_of(BROKEN_FIXTURES, "ctx.halt(self._next)", 1)),
                ("LM010", line_of(BROKEN_FIXTURES, "ctx.halt(self._next)", 2)),
                # ShardRankColoring, the partition-invariance fixture:
                # the same shared-counter channel, third occurrence.
                ("LM010", line_of(BROKEN_FIXTURES, "ctx.halt(self._next)", 3)),
                ("LM011", line_of(BROKEN_FIXTURES, "_PANIC_RNG.getrandbits")),
            ]
        )

    def test_id_leak_is_the_zero_round_form(self):
        result = analyze_paths([BROKEN_FIXTURES])
        leak = next(
            d
            for d in result.diagnostics
            if d.chain == ("IdLeakColoring.setup",)
        )
        assert leak.rule_id == "LM010"
        assert "radius-0" in leak.message


INTERPLAY_SOURCE = '''\
from repro.core.algorithm import SyncAlgorithm
from repro.core.context import Model
from repro.core.engine import run_local


class Interplay(SyncAlgorithm):
    name = "interplay"

    def __init__(self):
        self._rank = 0

    def setup(self, ctx):
        ctx.publish(0)

    def step(self, ctx, inbox):
        self._rank += 1
        ctx.publish(self._rank + ctx.now)  # repro: ignore[LM010]


class TypoSuppress(SyncAlgorithm):
    name = "typo-suppress"

    def setup(self, ctx):
        ctx.halt(0)  # repro: ignore[LM999]


def driver(graph):
    run_local(graph, Interplay(), Model.DET)
    run_local(graph, TypoSuppress(), Model.DET)
'''


class TestSuppressionInterplay:
    @pytest.fixture()
    def result(self, tmp_path):
        path = tmp_path / "interplay.py"
        path.write_text(INTERPLAY_SOURCE)
        return analyze_paths([path])

    def test_targeted_ignore_waives_only_the_named_rule(self, result):
        line = INTERPLAY_SOURCE.splitlines().index(
            "        ctx.publish(self._rank + ctx.now)"
            "  # repro: ignore[LM010]"
        ) + 1
        # Same line, two rules: LM010 is waived, LM006 still gates.
        assert [(d.rule_id, d.line) for d in result.suppressed] == [
            ("LM010", line)
        ]
        surviving = {
            (d.rule_id, d.line) for d in result.diagnostics
        }
        assert ("LM006", line) in surviving
        assert not any(r == "LM010" for r, _ in surviving)

    def test_unknown_rule_id_surfaces_as_suppress_warning(self, result):
        warn = next(
            d for d in result.diagnostics if d.rule_id == "SUPPRESS"
        )
        assert warn.severity is Severity.WARNING
        assert "LM999" in warn.message


class TestBaseline:
    def test_write_then_apply_demotes_everything(self, tmp_path):
        result = analyze_paths([FIXTURES / "lm001_bad.py"])
        assert len(result.diagnostics) == 2
        baseline = tmp_path / "baseline.json"
        assert write_baseline(baseline, result) == 2

        fresh = analyze_paths([FIXTURES / "lm001_bad.py"])
        entries = load_baseline(baseline)
        apply_baseline(fresh, entries, baseline)
        assert fresh.clean
        assert [d.rule_id for d in fresh.suppressed] == ["LM001", "LM001"]

    def test_stale_entry_expires_as_baseline_warning(self, tmp_path):
        stale = analyze_paths([FIXTURES / "lm001_bad.py"])
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, stale)

        clean = analyze_paths([FIXTURES / "clean_algos.py"])
        apply_baseline(clean, load_baseline(baseline), baseline)
        assert [d.rule_id for d in clean.diagnostics] == [
            "BASELINE",
            "BASELINE",
        ]
        for diag in clean.diagnostics:
            assert diag.severity is Severity.WARNING
            assert diag.path == str(baseline)
            assert "no longer occurs" in diag.message
            assert "only ever shrink" in diag.hint
        # Stale entries gate under --strict: the inventory cannot rot.
        assert not clean.clean

    def test_entries_are_repo_relative_and_fingerprinted(self, tmp_path):
        result = analyze_paths([FIXTURES / "lm001_bad.py"])
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, result, base_dir=FIXTURES)
        data = json.loads(baseline.read_text())
        assert data["version"] == BASELINE_VERSION
        for entry in data["entries"]:
            assert entry["path"] == "lm001_bad.py"
            assert len(entry["fingerprint"]) == 40

    def test_malformed_baseline_is_rejected_not_ignored(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 999, "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(bad)
        bad.write_text('["not", "a", "baseline"]')
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_matching_ignores_line_numbers(self, tmp_path):
        """Pure code motion must not expire baseline entries."""
        source = (FIXTURES / "lm001_bad.py").read_text()
        moved = tmp_path / "lm001_bad.py"
        moved.write_text(source)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, analyze_paths([moved]), tmp_path)

        moved.write_text("# pushed down one line\n" + source)
        shifted = analyze_paths([moved])
        apply_baseline(
            shifted, load_baseline(baseline), baseline, tmp_path
        )
        assert shifted.clean, shifted.render_text()

    def test_entry_key_identity(self):
        entry = BaselineEntry(
            rule_id="LM001",
            path="a.py",
            fingerprint="f" * 40,
            line=3,
            message="m",
        )
        assert entry.key() == ("LM001", "a.py", "f" * 40)


class TestSarif:
    @pytest.fixture()
    def log(self):
        result = analyze_paths([FIXTURES / "lm010_bad.py"])
        return to_sarif(result, base_dir=FIXTURES)

    def test_schema_and_version(self, log):
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        assert len(log["runs"]) == 1

    def test_all_rules_declared_including_pseudo(self, log):
        rules = {
            r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {
            "LM001", "LM010", "LM011", "PARSE", "SUPPRESS", "BASELINE",
        } <= rules
        for descriptor in log["runs"][0]["tool"]["driver"]["rules"]:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "error",
                "warning",
            )

    def test_results_carry_location_and_fingerprint(self, log):
        results = log["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"LM010"}
        for res in results:
            location = res["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == "lm010_bad.py"
            assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
            assert location["region"]["startLine"] > 0
            assert res["partialFingerprints"]["reproLint/v1"]
            assert res["level"] == "error"

    def test_chain_folded_into_message(self, log):
        texts = [
            r["message"]["text"] for r in log["runs"][0]["results"]
        ]
        assert any("reachable via" in t for t in texts)

    def test_fingerprint_stable_under_code_motion(self, tmp_path):
        source = (FIXTURES / "lm011_bad.py").read_text()
        path = tmp_path / "lm011_bad.py"
        path.write_text(source)
        before = {
            fingerprint(d, tmp_path)
            for d in analyze_paths([path]).diagnostics
        }
        path.write_text("# moved\n# down\n" + source)
        shifted = analyze_paths([path]).diagnostics
        assert {d.line for d in shifted} != seeded_lines("lm011_bad.py")
        assert {fingerprint(d, tmp_path) for d in shifted} == before

    def test_fingerprint_changes_when_the_line_changes(self, tmp_path):
        source = (FIXTURES / "lm011_bad.py").read_text()
        path = tmp_path / "lm011_bad.py"
        path.write_text(source)
        before = {
            fingerprint(d, tmp_path)
            for d in analyze_paths([path]).diagnostics
        }
        path.write_text(
            source.replace("getrandbits(8)", "getrandbits(16)")
        )
        after = {
            fingerprint(d, tmp_path)
            for d in analyze_paths([path]).diagnostics
        }
        assert before != after


class TestCache:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        target = tmp_path / "lm001_bad.py"
        target.write_text((FIXTURES / "lm001_bad.py").read_text())
        cache = tmp_path / "cache.json"

        cold, hit = cached_analyze([target], cache)
        assert not hit
        warm, hit = cached_analyze([target], cache)
        assert hit
        assert [d.to_dict() for d in warm.diagnostics] == [
            d.to_dict() for d in cold.diagnostics
        ]
        assert warm.files_analyzed == cold.files_analyzed

    def test_editing_a_corpus_file_invalidates(self, tmp_path):
        target = tmp_path / "lm001_bad.py"
        target.write_text((FIXTURES / "lm001_bad.py").read_text())
        cache = tmp_path / "cache.json"
        cached_analyze([target], cache)

        target.write_text(
            (FIXTURES / "lm001_bad.py").read_text() + "\n# edited\n"
        )
        _result, hit = cached_analyze([target], cache)
        assert not hit

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        target = tmp_path / "clean_algos.py"
        target.write_text((FIXTURES / "clean_algos.py").read_text())
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        result, hit = cached_analyze([target], cache)
        assert not hit
        assert result.clean
        # ... and the bad cache was replaced with a working one.
        _result, hit = cached_analyze([target], cache)
        assert hit


class TestLintCLIDataflowFlags:
    def test_sarif_format_and_output_file(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        code = cli_main(
            [
                "lint",
                "--format",
                "sarif",
                "--sarif-output",
                str(out),
                str(FIXTURES / "lm010_bad.py"),
            ]
        )
        assert code == 1
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(out.read_text())
        assert printed["version"] == written["version"] == "2.1.0"
        assert {
            r["ruleId"] for r in written["runs"][0]["results"]
        } == {"LM010"}

    def test_update_baseline_requires_baseline_path(self, capsys):
        code = cli_main(
            ["lint", "--update-baseline", str(FIXTURES / "lm001_bad.py")]
        )
        assert code == 2
        assert "--baseline" in capsys.readouterr().err

    def test_baseline_cycle_via_cli(self, tmp_path, capsys):
        target = str(FIXTURES / "lm001_bad.py")
        baseline = tmp_path / "baseline.json"
        assert cli_main(["lint", "--strict", target]) == 1
        assert (
            cli_main(
                [
                    "lint",
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                    target,
                ]
            )
            == 0
        )
        assert (
            cli_main(
                ["lint", "--strict", "--baseline", str(baseline), target]
            )
            == 0
        )
        capsys.readouterr()

    def test_unreadable_baseline_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        code = cli_main(
            [
                "lint",
                "--baseline",
                str(bad),
                str(FIXTURES / "clean_algos.py"),
            ]
        )
        assert code == 2
        assert "unreadable baseline" in capsys.readouterr().err

    def test_changed_from_bad_ref_fails_loudly(self, capsys):
        code = cli_main(
            [
                "lint",
                "--changed-from",
                "no-such-ref-anywhere",
                str(FIXTURES / "clean_algos.py"),
            ]
        )
        assert code == 2
        capsys.readouterr()

    def test_cache_flag_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        target = str(FIXTURES / "lm006_bad.py")
        assert cli_main(["lint", "--cache", str(cache), target]) == 0
        assert cache.exists()
        assert (
            cli_main(
                ["lint", "--strict", "--cache", str(cache), target]
            )
            == 1
        )
        capsys.readouterr()
